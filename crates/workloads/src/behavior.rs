//! Behaviour knobs and the recipe engine turning them into traces.

use crate::builder::TraceBuilder;
use rand::Rng;
use serde::{Deserialize, Serialize};
use smrseek_trace::{Lba, TraceRecord, MIB, SECTOR_SIZE};

/// The behavioural knob set of one synthetic workload.
///
/// Write-placement fractions (`wr_*`) and read-behaviour fractions (`rd_*`)
/// each sum to at most 1; the remainders fall through to uniform-random
/// writes and reads respectively. Knobs map to the phenomena the paper
/// identifies:
///
/// * `wr_descending` / `wr_interleaved` — mis-ordered writes (Fig 7/8),
/// * `rd_scan` with `scan_repeats` — sequential-read-after-random-write,
///   the worst case for log-structured translation (§III),
/// * `rd_replay` — temporal replay, the log-*friendly* case (§III),
/// * `rd_zipf` / `rd_straddle` — skewed fragment popularity (Fig 10),
/// * `cycles` — diurnal phases (Fig 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Behavior {
    /// Fraction of writes in ascending sequential streams.
    pub wr_sequential: f64,
    /// Fraction of writes in descending chunk bursts (Fig 7a).
    pub wr_descending: f64,
    /// Fraction of writes in interleaved ascending streams (§IV-B).
    pub wr_interleaved: f64,
    /// Fraction of reads that sequentially scan the hot region.
    pub rd_scan: f64,
    /// Fraction of reads replaying recent writes in temporal order.
    pub rd_replay: f64,
    /// Fraction of reads re-reading written ranges, Zipf-skewed.
    pub rd_zipf: f64,
    /// Fraction of reads straddling written ranges (always fragmented
    /// under LS), Zipf-skewed.
    pub rd_straddle: f64,
    /// Zipf exponent for `rd_zipf` / `rd_straddle`.
    pub zipf_theta: f64,
    /// How many times each cycle's scan pass repeats.
    pub scan_repeats: u32,
    /// Hot-region size in MiB.
    pub region_mib: u64,
    /// Diurnal cycles: the write/read phase structure repeats this often.
    pub cycles: u32,
    /// Idle gap inserted between cycles, in microseconds (the quiet phase
    /// of the diurnal pattern; gives idle-time mechanisms something to
    /// work with).
    pub cycle_idle_us: u64,
    /// Stream count for `wr_interleaved`.
    pub interleave_streams: usize,
}

impl Default for Behavior {
    fn default() -> Self {
        Behavior {
            wr_sequential: 0.0,
            wr_descending: 0.0,
            wr_interleaved: 0.0,
            rd_scan: 0.0,
            rd_replay: 0.0,
            rd_zipf: 0.0,
            rd_straddle: 0.0,
            zipf_theta: 1.0,
            scan_repeats: 1,
            region_mib: 256,
            cycles: 4,
            cycle_idle_us: 1_000_000, // a 1 s lull between cycles
            interleave_streams: 4,
        }
    }
}

impl Behavior {
    fn validate(&self) {
        let wr = self.wr_sequential + self.wr_descending + self.wr_interleaved;
        let rd = self.rd_scan + self.rd_replay + self.rd_zipf + self.rd_straddle;
        assert!(
            (0.0..=1.0 + 1e-9).contains(&wr),
            "write fractions sum to {wr}, must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0 + 1e-9).contains(&rd),
            "read fractions sum to {rd}, must be in [0, 1]"
        );
        assert!(self.cycles >= 1, "need at least one cycle");
        assert!(self.region_mib >= 1, "region must be at least 1 MiB");
        assert!(self.interleave_streams >= 1, "need at least one stream");
        assert!(self.scan_repeats >= 1, "scan_repeats must be positive");
    }
}

/// Operation count at which `region_mib` is taken at face value; the
/// region scales linearly with the actual op count so that write density —
/// and therefore fragmentation per read — is invariant under trace scaling.
pub const NOMINAL_OPS: usize = 40_000;

/// Generates a trace from a behaviour and target shape.
///
/// `read_ops`/`write_ops` are the operation counts to emit;
/// `mean_read_sectors`/`mean_write_sectors` the target mean op sizes.
/// Output is time-ordered; each cycle writes first (fragmenting the
/// region), then reads.
///
/// # Panics
///
/// Panics if the behaviour's fractions are out of range (see
/// [`Behavior`]).
pub fn generate(
    behavior: &Behavior,
    read_ops: usize,
    write_ops: usize,
    mean_read_sectors: u32,
    mean_write_sectors: u32,
    seed: u64,
) -> Vec<TraceRecord> {
    behavior.validate();
    let mut b = TraceBuilder::new(seed);
    let region_start = Lba::new(0);
    let total_ops = (read_ops + write_ops) as u64;
    let region_sectors = (behavior.region_mib * MIB / SECTOR_SIZE)
        .saturating_mul(total_ops.max(1))
        .div_ceil(NOMINAL_OPS as u64)
        .max(2 * MIB / SECTOR_SIZE);
    let cycles = behavior.cycles as usize;
    // A separate, ever-ascending area for pure sequential write streams so
    // they do not overwrite (defragment) the hot region.
    let mut seq_cursor = Lba::new(region_sectors);

    for cycle in 0..cycles {
        if cycle > 0 && behavior.cycle_idle_us > 0 {
            b.advance_clock(behavior.cycle_idle_us);
        }
        let w = per_cycle(write_ops, cycles, cycle);
        let r = per_cycle(read_ops, cycles, cycle);

        // ---- write phase ----
        let w_seq = frac(w, behavior.wr_sequential);
        let w_desc = frac(w, behavior.wr_descending);
        let w_int = frac(w, behavior.wr_interleaved);
        let w_rand = w.saturating_sub(w_seq + w_desc + w_int);

        if w_seq > 0 {
            b.write_sequential(seq_cursor, w_seq, mean_write_sectors);
            seq_cursor += w_seq as u64 * u64::from(mean_write_sectors);
        }
        if w_desc > 0 {
            // Bursts of descending chunks at random bases inside the
            // region. Chunk size adapts to the write size so that a chunk
            // boundary's logical successor lands within the 256 KB
            // mis-order window (Fig 8): the volume between a chunk's first
            // write and the op that completes the preceding chunk is
            // (2 * ops_per_chunk - 1) writes.
            let write_bytes = u64::from(mean_write_sectors) * SECTOR_SIZE;
            let ops_per_chunk =
                usize::try_from((224 * 1024 / write_bytes.max(1)).div_ceil(2).clamp(1, 6))
                    .expect("small");
            let chunks_per_burst = 4;
            let burst = ops_per_chunk * chunks_per_burst;
            let mut left = w_desc;
            while left > 0 {
                let burst_ops = left.min(burst);
                let chunks = burst_ops.div_ceil(ops_per_chunk);
                let span = (burst_ops as u64) * u64::from(mean_write_sectors);
                let base = random_aligned(&mut b, region_sectors.saturating_sub(span));
                b.write_descending_chunks(
                    region_start + base,
                    chunks,
                    ops_per_chunk,
                    mean_write_sectors,
                );
                left -= burst_ops;
            }
        }
        if w_int > 0 {
            let span = (w_int as u64) * u64::from(mean_write_sectors);
            let base = random_aligned(&mut b, region_sectors.saturating_sub(span));
            b.write_interleaved(
                region_start + base,
                behavior.interleave_streams,
                w_int,
                mean_write_sectors,
            );
        }
        if w_rand > 0 {
            b.write_random(region_start, region_sectors, w_rand, mean_write_sectors);
        }

        // ---- read phase ----
        let r_scan = frac(r, behavior.rd_scan);
        let r_replay = frac(r, behavior.rd_replay);
        let r_zipf = frac(r, behavior.rd_zipf);
        let r_strad = frac(r, behavior.rd_straddle);
        let r_rand = r.saturating_sub(r_scan + r_replay + r_zipf + r_strad);

        if r_scan > 0 {
            // Sweep a fixed window `scan_repeats` times; the window is what
            // the op budget divided by the repeat count can cover, capped at
            // the hot region.
            let repeats = behavior.scan_repeats as usize;
            let ops_per_pass = (r_scan / repeats).max(1);
            let span = (ops_per_pass as u64 * u64::from(mean_read_sectors))
                .min(region_sectors)
                .max(u64::from(mean_read_sectors));
            let ops_actual_per_pass = usize::try_from(span.div_ceil(u64::from(mean_read_sectors)))
                .expect("pass op count fits usize");
            let mut emitted = 0;
            while emitted < r_scan {
                b.read_scan(region_start, span, mean_read_sectors);
                emitted += ops_actual_per_pass;
            }
        }
        if r_replay > 0 {
            b.read_replay_recent(r_replay);
        }
        if r_zipf > 0 {
            b.read_zipf_written(r_zipf, behavior.zipf_theta);
        }
        if r_strad > 0 {
            b.read_straddling_written(r_strad, behavior.zipf_theta, 16);
        }
        if r_rand > 0 {
            b.read_random(region_start, region_sectors, r_rand, mean_read_sectors);
        }
    }
    b.finish()
}

/// Share of `total` for cycle `i` of `cycles`, distributing remainders to
/// early cycles so the totals add up exactly.
fn per_cycle(total: usize, cycles: usize, i: usize) -> usize {
    total / cycles + usize::from(i < total % cycles)
}

fn frac(total: usize, f: f64) -> usize {
    ((total as f64) * f).round() as usize
}

fn random_aligned(b: &mut TraceBuilder, max: u64) -> u64 {
    if max < 8 {
        return 0;
    }
    b.rng_gen_range(0..max) / 8 * 8
}

impl TraceBuilder {
    /// Draws from the builder's RNG (kept here to avoid exposing the RNG
    /// type in the public builder API).
    fn rng_gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.rng_mut().gen_range(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::OpKind;

    fn count_ops(trace: &[TraceRecord]) -> (usize, usize) {
        let reads = trace.iter().filter(|r| r.op == OpKind::Read).count();
        (reads, trace.len() - reads)
    }

    #[test]
    fn op_counts_respected() {
        let behavior = Behavior {
            rd_scan: 0.5,
            rd_zipf: 0.3,
            ..Behavior::default()
        };
        let trace = generate(&behavior, 2000, 1000, 16, 16, 1);
        let (reads, writes) = count_ops(&trace);
        assert_eq!(writes, 1000);
        // Scan emission rounds up to whole passes; allow slack.
        assert!((1900..=2300).contains(&reads), "reads = {reads}");
    }

    #[test]
    fn deterministic() {
        let behavior = Behavior {
            wr_descending: 0.5,
            rd_straddle: 0.5,
            ..Behavior::default()
        };
        let a = generate(&behavior, 500, 500, 16, 16, 9);
        let c = generate(&behavior, 500, 500, 16, 16, 9);
        assert_eq!(a, c);
    }

    #[test]
    fn timestamps_monotone() {
        let behavior = Behavior {
            rd_scan: 1.0,
            wr_interleaved: 1.0,
            cycles: 3,
            ..Behavior::default()
        };
        let trace = generate(&behavior, 300, 300, 16, 16, 2);
        assert!(trace
            .windows(2)
            .all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn cycles_split_evenly() {
        assert_eq!(per_cycle(10, 4, 0), 3);
        assert_eq!(per_cycle(10, 4, 1), 3);
        assert_eq!(per_cycle(10, 4, 2), 2);
        assert_eq!(per_cycle(10, 4, 3), 2);
        let total: usize = (0..4).map(|i| per_cycle(10, 4, i)).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn pure_sequential_writes_ascend() {
        let behavior = Behavior {
            wr_sequential: 1.0,
            cycles: 1,
            ..Behavior::default()
        };
        let trace = generate(&behavior, 0, 100, 16, 16, 3);
        assert!(
            trace.windows(2).all(|w| w[0].end() == w[1].lba),
            "sequential stream broken"
        );
    }

    #[test]
    #[should_panic(expected = "write fractions")]
    fn overfull_write_fractions_panic() {
        let behavior = Behavior {
            wr_sequential: 0.8,
            wr_descending: 0.8,
            ..Behavior::default()
        };
        generate(&behavior, 10, 10, 8, 8, 0);
    }

    #[test]
    #[should_panic(expected = "read fractions")]
    fn overfull_read_fractions_panic() {
        let behavior = Behavior {
            rd_scan: 0.9,
            rd_zipf: 0.9,
            ..Behavior::default()
        };
        generate(&behavior, 10, 10, 8, 8, 0);
    }

    #[test]
    fn cycle_idle_gaps_appear_in_timestamps() {
        let behavior = Behavior {
            rd_scan: 0.5,
            cycles: 4,
            cycle_idle_us: 10_000_000,
            ..Behavior::default()
        };
        let trace = generate(&behavior, 400, 400, 16, 16, 5);
        let mut big_gaps = 0;
        for w in trace.windows(2) {
            if w[1].timestamp_us - w[0].timestamp_us >= 10_000_000 {
                big_gaps += 1;
            }
        }
        assert_eq!(big_gaps, 3, "one idle gap between each pair of cycles");
    }

    #[test]
    fn zero_ops_yield_empty_trace() {
        let trace = generate(&Behavior::default(), 0, 0, 8, 8, 0);
        assert!(trace.is_empty());
    }
}
