//! Named workload profiles for every trace in Table I of the paper.
//!
//! Each profile carries the paper's published characteristics
//! ([`TableRow`]) and a [`Behavior`] tuned so the synthetic stand-in
//! reproduces the workload's *qualitative* seek profile: log-friendly
//! (SAF < 1), log-sensitive (SAF ≫ 1) or log-agnostic, plus the
//! mis-ordered-write and fragment-skew phenomena the mechanisms target.
//!
//! OCR notes on Table I as printed: the read-volume column for `w36` and
//! `w106` repeats the values of neighbouring rows (399.6 / 2353 GB, which
//! would imply multi-MB mean reads); we substitute plausible volumes (4.0 /
//! 11.8 GB) consistent with each trace's read count and typical op sizes.

use crate::behavior::{self, Behavior};
use serde::{Deserialize, Serialize};
use smrseek_trace::{TraceRecord, GIB, SECTOR_SIZE};

/// Which published trace family a profile stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// MSR Cambridge traces (Narayanan et al., FAST '08; 2007–08 era).
    Msr,
    /// CloudPhysics traces (Waldspurger et al., FAST '15; newer).
    CloudPhysics,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::Msr => f.write_str("MSR"),
            Family::CloudPhysics => f.write_str("CloudPhysics"),
        }
    }
}

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Read operations in the original trace.
    pub read_count: u64,
    /// Write operations in the original trace.
    pub write_count: u64,
    /// Volume read, GB.
    pub read_gb: f64,
    /// Volume written, GB.
    pub written_gb: f64,
    /// Mean write size, KB.
    pub mean_write_kb: f64,
    /// Guest operating system, as published.
    pub os: &'static str,
}

impl TableRow {
    /// Total operations.
    pub fn total_ops(&self) -> u64 {
        self.read_count + self.write_count
    }

    /// Fraction of operations that are reads.
    pub fn read_fraction(&self) -> f64 {
        self.read_count as f64 / self.total_ops() as f64
    }

    /// Mean read size in sectors implied by the row, clamped to
    /// `[8, 1024]` and rounded to 4 KiB.
    pub fn mean_read_sectors(&self) -> u32 {
        if self.read_count == 0 {
            return 8;
        }
        let sectors = self.read_gb * GIB as f64 / SECTOR_SIZE as f64 / self.read_count as f64;
        (((sectors / 8.0).round() as u32) * 8).clamp(8, 1024)
    }

    /// Mean write size in sectors implied by the row, clamped like reads.
    pub fn mean_write_sectors(&self) -> u32 {
        ((((self.mean_write_kb * 2.0) / 8.0).round() as u32) * 8).clamp(8, 1024)
    }
}

/// A named synthetic workload profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Workload name as in the paper (`w91`, `src2_2`, ...).
    pub name: &'static str,
    /// Trace family.
    pub family: Family,
    /// The paper's Table-I characteristics.
    pub row: TableRow,
    /// The behavioural knobs of the stand-in generator.
    pub behavior: Behavior,
}

/// Default operation count for [`Profile::generate`].
pub const DEFAULT_OPS: usize = 40_000;

impl Profile {
    /// Generates the stand-in trace with [`DEFAULT_OPS`] operations.
    pub fn generate(&self, seed: u64) -> Vec<TraceRecord> {
        self.generate_scaled(seed, DEFAULT_OPS)
    }

    /// Generates the stand-in trace scaled to approximately
    /// `total_ops` operations, preserving the row's read/write ratio and
    /// mean op sizes.
    pub fn generate_scaled(&self, seed: u64, total_ops: usize) -> Vec<TraceRecord> {
        let reads = (total_ops as f64 * self.row.read_fraction()).round() as usize;
        let writes = total_ops - reads;
        behavior::generate(
            &self.behavior,
            reads,
            writes,
            self.row.mean_read_sectors(),
            self.row.mean_write_sectors(),
            seed ^ fxhash(self.name),
        )
    }
}

/// Stable tiny string hash so each profile gets distinct streams from the
/// same user seed.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Behaviour of the write-intensive MSR servers (`wdev_0`, `mds_0`, ...):
/// dominated by small random writes; reads partly replay recent writes.
/// Log-friendly — log-structuring removes far more write seeks than it
/// adds read seeks.
fn write_intensive_msr() -> Behavior {
    Behavior {
        rd_replay: 0.4,
        rd_zipf: 0.2,
        zipf_theta: 0.9,
        region_mib: 256,
        cycles: 4,
        ..Behavior::default()
    }
}

/// All 21 profiles of Table I.
pub fn all() -> Vec<Profile> {
    vec![
        // ---------------- MSR traces ----------------
        Profile {
            name: "usr_0",
            family: Family::Msr,
            row: TableRow {
                read_count: 904_483,
                write_count: 1_333_406,
                read_gb: 35.3,
                written_gb: 13.0,
                mean_write_kb: 10.2,
                os: "Microsoft Windows",
            },
            behavior: write_intensive_msr(),
        },
        Profile {
            name: "src2_2",
            family: Family::Msr,
            row: TableRow {
                read_count: 350_930,
                write_count: 805_955,
                read_gb: 22.7,
                written_gb: 39.2,
                mean_write_kb: 51.1,
                os: "Microsoft Windows",
            },
            // ~1-in-20 mis-ordered writes (Fig 8) from descending dispatch
            // bursts; single-pass scans keep it log-friendly overall.
            behavior: Behavior {
                wr_descending: 0.25,
                rd_scan: 0.3,
                rd_replay: 0.3,
                scan_repeats: 1,
                region_mib: 512,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "hm_1",
            family: Family::Msr,
            row: TableRow {
                read_count: 580_896,
                write_count: 28_415,
                read_gb: 8.2,
                written_gb: 0.5,
                mean_write_kb: 19.9,
                os: "Microsoft Windows",
            },
            // Fig 7a: descending write bursts; reads straddle the resulting
            // fragments with strong popularity skew (Fig 10b). One of the
            // two MSR workloads with SAF > 1.
            behavior: Behavior {
                wr_descending: 0.7,
                rd_straddle: 0.3,
                rd_zipf: 0.4,
                zipf_theta: 1.1,
                region_mib: 64,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "web_0",
            family: Family::Msr,
            row: TableRow {
                read_count: 606_487,
                write_count: 1_423_458,
                read_gb: 17.3,
                written_gb: 11.6,
                mean_write_kb: 8.5,
                os: "Microsoft Windows",
            },
            behavior: write_intensive_msr(),
        },
        Profile {
            name: "usr_1",
            family: Family::Msr,
            row: TableRow {
                read_count: 41_426_266,
                write_count: 3_857_714,
                read_gb: 2_079.2,
                written_gb: 56.1,
                mean_write_kb: 15.2,
                os: "Microsoft Windows",
            },
            // Massive repeated sequential scans over a randomly-updated
            // region far larger than any drive cache: the paper's
            // log-sensitive MSR outlier where even selective caching
            // struggles.
            behavior: Behavior {
                rd_scan: 0.85,
                rd_zipf: 0.05,
                scan_repeats: 6,
                region_mib: 256,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "wdev_0",
            family: Family::Msr,
            row: TableRow {
                read_count: 229_529,
                write_count: 913_732,
                read_gb: 2.7,
                written_gb: 7.1,
                mean_write_kb: 8.2,
                os: "Microsoft Windows",
            },
            behavior: write_intensive_msr(),
        },
        Profile {
            name: "mds_0",
            family: Family::Msr,
            row: TableRow {
                read_count: 143_973,
                write_count: 1_067_061,
                read_gb: 3.2,
                written_gb: 7.3,
                mean_write_kb: 7.2,
                os: "Microsoft Windows",
            },
            behavior: write_intensive_msr(),
        },
        Profile {
            name: "rsrch_0",
            family: Family::Msr,
            row: TableRow {
                read_count: 133_625,
                write_count: 1_300_030,
                read_gb: 1.3,
                written_gb: 10.8,
                mean_write_kb: 8.7,
                os: "Microsoft Windows",
            },
            behavior: write_intensive_msr(),
        },
        Profile {
            name: "ts_0",
            family: Family::Msr,
            row: TableRow {
                read_count: 316_692,
                write_count: 1_485_042,
                read_gb: 4.1,
                written_gb: 4.1,
                mean_write_kb: 8.0,
                os: "Microsoft Windows",
            },
            behavior: write_intensive_msr(),
        },
        // ---------------- CloudPhysics traces ----------------
        Profile {
            name: "w84",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 655_397,
                write_count: 4_158_838,
                read_gb: 13.7,
                written_gb: 124.1,
                mean_write_kb: 31.2,
                os: "Red Hat Enterprise Linux 5",
            },
            // Heavily mis-ordered writes (descending + interleaved); reads
            // straddle the resulting near-adjacent fragments — the pattern
            // look-ahead-behind prefetching repairs (3.7x in the paper).
            behavior: Behavior {
                wr_descending: 0.35,
                wr_interleaved: 0.35,
                rd_straddle: 0.55,
                rd_zipf: 0.15,
                zipf_theta: 0.8,
                region_mib: 256,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w95",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 1_264_721,
                write_count: 2_672_520,
                read_gb: 30.3,
                written_gb: 27.7,
                mean_write_kb: 10.8,
                os: "Microsoft Windows Server 2008",
            },
            behavior: Behavior {
                wr_descending: 0.3,
                wr_interleaved: 0.3,
                rd_straddle: 0.5,
                rd_scan: 0.25,
                zipf_theta: 0.9,
                scan_repeats: 2,
                region_mib: 128,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w64",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 6_434_453,
                write_count: 1_023_814,
                read_gb: 399.6,
                written_gb: 36.9,
                mean_write_kb: 37.8,
                os: "Microsoft Windows Server 2008 R2",
            },
            behavior: Behavior {
                rd_scan: 0.6,
                rd_zipf: 0.2,
                scan_repeats: 2,
                zipf_theta: 0.9,
                region_mib: 384,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w93",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 2_928_984,
                write_count: 422_470,
                read_gb: 115.7,
                written_gb: 11.4,
                mean_write_kb: 28.3,
                os: "Microsoft Windows Server 2003",
            },
            // Single-pass scans: fragmented reads that never repeat, so
            // defragmentation's rewrite cost is pure overhead (Fig 11).
            behavior: Behavior {
                rd_scan: 0.8,
                scan_repeats: 1,
                region_mib: 512,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w20",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 19_652_684,
                write_count: 10_189_634,
                read_gb: 2_353.0,
                written_gb: 332.8,
                mean_write_kb: 34.25,
                os: "Microsoft Windows Server 2003",
            },
            // Huge single-pass scans (mean read ~120 KB) over a heavily
            // random-written space: large SAF, and the workload where
            // defrag *worsens* SAF 2.8x in the paper.
            behavior: Behavior {
                rd_scan: 0.85,
                scan_repeats: 1,
                region_mib: 1536,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w91",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 3_147_384,
                write_count: 1_169_222,
                read_gb: 52.9,
                written_gb: 15.3,
                mean_write_kb: 17.1,
                os: "Microsoft Windows Server 2003",
            },
            // The paper's most log-sensitive workload (SAF 3.7–5):
            // repeated scans and hot re-reads over a modest region that a
            // 64 MB fragment cache can largely absorb (SAF -> 0.2).
            behavior: Behavior {
                rd_scan: 0.6,
                rd_straddle: 0.25,
                scan_repeats: 6,
                zipf_theta: 1.2,
                region_mib: 64,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w76",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 258_852,
                write_count: 5_817_421,
                read_gb: 30.3,
                written_gb: 5.15,
                mean_write_kb: 35.7,
                os: "Microsoft Windows Server 2008 R2",
            },
            behavior: Behavior {
                rd_replay: 0.3,
                rd_zipf: 0.2,
                zipf_theta: 0.9,
                region_mib: 256,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w36",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 113_090,
                write_count: 18_802_536,
                read_gb: 4.0, // OCR correction; printed value repeats w64's
                written_gb: 4.02,
                mean_write_kb: 141.8,
                os: "Red Hat Enterprise Linux 5",
            },
            // Overwhelmingly write-dominated with large sequential-ish
            // writes: the canonical log-friendly case (Fig 2b).
            behavior: Behavior {
                wr_sequential: 0.3,
                rd_replay: 0.3,
                region_mib: 512,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w89",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 1_536_898,
                write_count: 2_089_042,
                read_gb: 115.7,
                written_gb: 20.5,
                mean_write_kb: 31.7,
                os: "Microsoft Windows Server 2008 R2",
            },
            behavior: Behavior {
                rd_scan: 0.4,
                rd_zipf: 0.2,
                scan_repeats: 2,
                zipf_theta: 0.9,
                region_mib: 256,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w106",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 576_666,
                write_count: 2_699_254,
                read_gb: 11.8, // OCR correction; printed value repeats w20's
                written_gb: 8.4,
                mean_write_kb: 21.2,
                os: "Microsoft Windows Server 2003 Standard",
            },
            // Fig 7b's small-scale randomness with ~1-in-25 mis-ordered
            // writes from descending dispatch.
            behavior: Behavior {
                wr_descending: 0.12,
                rd_replay: 0.3,
                rd_zipf: 0.2,
                zipf_theta: 0.9,
                region_mib: 128,
                cycles: 4,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w55",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 7_797_622,
                write_count: 1_057_909,
                read_gb: 35.8,
                written_gb: 18.4,
                mean_write_kb: 18.2,
                os: "Microsoft Windows Server 2008 R2",
            },
            // Low average SAF but strongly diurnal (Fig 3d): many cycles
            // whose read phases alternate between benign re-reads and
            // fragmented scans.
            behavior: Behavior {
                rd_zipf: 0.45,
                rd_scan: 0.25,
                rd_straddle: 0.05,
                zipf_theta: 0.9,
                scan_repeats: 2,
                region_mib: 96,
                cycles: 10,
                ..Behavior::default()
            },
        },
        Profile {
            name: "w33",
            family: Family::CloudPhysics,
            row: TableRow {
                read_count: 7_603_814,
                write_count: 8_013_607,
                read_gb: 238.0,
                written_gb: 241.0,
                mean_write_kb: 31.6,
                os: "Red Hat Enterprise Linux 5",
            },
            behavior: Behavior {
                rd_scan: 0.5,
                rd_straddle: 0.1,
                scan_repeats: 3,
                zipf_theta: 0.9,
                region_mib: 512,
                cycles: 4,
                ..Behavior::default()
            },
        },
    ]
}

/// Looks a profile up by its paper name (case-sensitive).
pub fn by_name(name: &str) -> Option<Profile> {
    all().into_iter().find(|p| p.name == name)
}

/// The profiles of one family, in Table-I order.
pub fn by_family(family: Family) -> Vec<Profile> {
    all().into_iter().filter(|p| p.family == family).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::{characterize, OpKind};

    #[test]
    fn has_21_profiles_with_unique_names() {
        let profiles = all();
        assert_eq!(profiles.len(), 21);
        let mut names: Vec<_> = profiles.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn family_split_matches_paper() {
        assert_eq!(by_family(Family::Msr).len(), 9);
        assert_eq!(by_family(Family::CloudPhysics).len(), 12);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("w91").is_some());
        assert!(by_name("hm_1").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(by_name("usr_1").unwrap().family, Family::Msr);
    }

    #[test]
    fn generation_is_deterministic_and_distinct_across_profiles() {
        let a = by_name("w91").unwrap();
        let b = by_name("w20").unwrap();
        assert_eq!(a.generate(1), a.generate(1));
        assert_ne!(a.generate(1), b.generate(1));
        assert_ne!(a.generate(1), a.generate(2));
    }

    #[test]
    fn scaled_op_counts_and_ratio() {
        for profile in all() {
            let trace = profile.generate_scaled(7, 10_000);
            let reads = trace.iter().filter(|r| r.op == OpKind::Read).count();
            let writes = trace.len() - reads;
            let want_reads = 10_000.0 * profile.row.read_fraction();
            assert!(
                (reads as f64 - want_reads).abs() < 0.15 * 10_000.0,
                "{}: reads {reads} vs expected {want_reads:.0}",
                profile.name
            );
            assert!(
                writes > 0 || profile.row.write_count == 0,
                "{}: no writes generated",
                profile.name
            );
        }
    }

    #[test]
    fn mean_sizes_tracked() {
        // Write-size fidelity: within 50% of the Table-I mean (size
        // sampler is quantized and clamped).
        for name in ["w36", "w91", "src2_2", "mds_0"] {
            let profile = by_name(name).unwrap();
            let trace = profile.generate_scaled(3, 20_000);
            let stats = characterize(&trace);
            if stats.write_count > 0 {
                let want = f64::from(profile.row.mean_write_sectors()) / 2.0; // KB
                let got = stats.mean_write_size_kb();
                assert!(
                    got > want * 0.5 && got < want * 2.0,
                    "{name}: mean write {got:.1} KB vs target {want:.1} KB"
                );
            }
        }
    }

    #[test]
    fn row_derived_sizes_clamped() {
        for profile in all() {
            let r = profile.row.mean_read_sectors();
            let w = profile.row.mean_write_sectors();
            assert!(
                (8..=1024).contains(&r) && r % 8 == 0,
                "{}: {r}",
                profile.name
            );
            assert!(
                (8..=1024).contains(&w) && w % 8 == 0,
                "{}: {w}",
                profile.name
            );
        }
    }

    #[test]
    fn read_fraction_bounds() {
        for profile in all() {
            let f = profile.row.read_fraction();
            assert!((0.0..=1.0).contains(&f), "{}", profile.name);
        }
        assert!(by_name("usr_1").unwrap().row.read_fraction() > 0.9);
        assert!(by_name("w36").unwrap().row.read_fraction() < 0.01);
    }
}
