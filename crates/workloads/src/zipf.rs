//! A Zipf(θ) sampler over ranks `0..n`.
//!
//! Fragment access popularity in the paper's workloads is highly skewed
//! (Fig 10: "a small number of fragments responsible for a large number of
//! seeks"); the synthetic profiles reproduce that skew by sampling re-read
//! targets from a Zipf distribution.

use rand::Rng;

/// A Zipf distribution over `n` ranks with exponent `theta`:
/// `P(rank = k) ∝ 1 / (k + 1)^theta`.
///
/// Sampling is inverse-CDF over a precomputed table: O(n) memory,
/// O(log n) per sample, exact.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use smrseek_workloads::Zipf;
///
/// let zipf = Zipf::new(1000, 1.0);
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut hits0 = 0;
/// for _ in 0..1000 {
///     if zipf.sample(&mut rng) == 0 {
///         hits0 += 1;
///     }
/// }
/// assert!(hits0 > 50, "rank 0 must dominate, got {hits0}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// cdf[k] = P(rank <= k), strictly increasing to 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be a non-negative finite number"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution has exactly one rank (never the
    /// case for a valid distribution to be empty).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 0.99);
        let sum: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_theta_more_skewed() {
        let flat = Zipf::new(100, 0.5);
        let steep = Zipf::new(100, 1.5);
        assert!(steep.pmf(0) > flat.pmf(0));
        assert!(steep.pmf(99) < flat.pmf(99));
    }

    #[test]
    fn samples_within_range_and_skewed() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 50];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
        assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), 10_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(10, 1.2);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_panics() {
        Zipf::new(10, -1.0);
    }
}
