//! A two-level (RAM + simulated flash) cache over physical sector ranges.
//!
//! The paper's selective cache (§IV-C) is a single 64 MB RAM tier; ROADMAP
//! open item 3 replaces it with a multi-level cache: a small RAM tier backed
//! by a much larger simulated flash tier. Lookups try RAM first, then
//! flash; a flash hit **promotes** the range into RAM, and RAM evictions
//! **demote** their victims into flash instead of dropping them — so the
//! flash tier holds the recently-evicted working set that a single-tier
//! cache would have to re-read from the disk with a seek. The two tiers
//! have distinct hit costs (a flash hit pays `smrseek-disk`'s
//! `FlashProfile` latency, a RAM hit is free), which is what makes the
//! split observable in time-weighted experiments.
//!
//! Like [`RangeCache`], the tiers track presence and recency only — in a
//! log-structured system physical sectors are written once, so entries
//! never go stale.

use crate::range::RangeCache;
use serde::{Deserialize, Serialize};
use smrseek_trace::Pba;

/// Which tier (if any) served a [`TieredCache::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierLookup {
    /// Served from the RAM tier: free.
    Ram,
    /// Served from the flash tier: pays the flash hit latency; the range
    /// was promoted into RAM.
    Flash,
    /// Neither tier holds the range.
    Miss,
}

impl TierLookup {
    /// Whether the lookup was served by either tier.
    pub fn is_hit(self) -> bool {
        !matches!(self, TierLookup::Miss)
    }
}

/// Pure event counts of one [`TieredCache`]'s activity.
///
/// Every field is an additive event count, so stats from disjoint record
/// ranges (each replayed from the correct cache contents) merge by
/// fieldwise addition — the same contract `LsStats::merge` gives sharded
/// replays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierStats {
    /// Lookups served by the RAM tier.
    pub ram_hits: u64,
    /// Lookups served by the flash tier (each also counts one promotion).
    pub flash_hits: u64,
    /// Lookups neither tier could serve.
    pub misses: u64,
    /// Ranges promoted flash → RAM on a flash hit.
    pub promotions: u64,
    /// Sectors demoted RAM → flash on RAM eviction.
    pub demoted_sectors: u64,
    /// Sectors evicted out of the flash tier entirely.
    pub flash_evicted_sectors: u64,
}

impl TierStats {
    /// Folds another run's counters into this one (fieldwise addition).
    pub fn merge(&mut self, other: &TierStats) {
        self.ram_hits += other.ram_hits;
        self.flash_hits += other.flash_hits;
        self.misses += other.misses;
        self.promotions += other.promotions;
        self.demoted_sectors += other.demoted_sectors;
        self.flash_evicted_sectors += other.flash_evicted_sectors;
    }

    /// Overall hit fraction (either tier) in `[0, 1]`; 0 with no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.ram_hits + self.flash_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.ram_hits + self.flash_hits) as f64 / total as f64
        }
    }
}

/// A RAM tier with an optional flash tier behind it.
///
/// Without a flash tier this behaves exactly like the single
/// [`RangeCache`] it wraps (evictions drop), so the paper's fixed
/// selective-cache configuration is the degenerate case.
///
/// # Example
///
/// ```
/// use smrseek_cache::{TieredCache, TierLookup};
/// use smrseek_trace::Pba;
///
/// let mut c = TieredCache::with_flash_sectors(16, 64);
/// c.admit(Pba::new(0), 16);
/// c.admit(Pba::new(100), 16); // RAM over budget: [0,16) demotes to flash
/// assert_eq!(c.lookup(Pba::new(0), 16), TierLookup::Flash); // promoted back
/// assert_eq!(c.lookup(Pba::new(0), 16), TierLookup::Ram);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieredCache {
    ram: RangeCache,
    flash: Option<RangeCache>,
    stats: TierStats,
}

impl TieredCache {
    /// A single-tier cache of `ram_sectors` sectors (no flash).
    pub fn single_sectors(ram_sectors: u64) -> Self {
        TieredCache {
            ram: RangeCache::with_capacity_sectors(ram_sectors),
            flash: None,
            stats: TierStats::default(),
        }
    }

    /// A single-tier cache of `ram_bytes` bytes (no flash).
    pub fn single_bytes(ram_bytes: u64) -> Self {
        TieredCache {
            ram: RangeCache::with_capacity_bytes(ram_bytes),
            flash: None,
            stats: TierStats::default(),
        }
    }

    /// A two-tier cache with sector budgets per tier.
    pub fn with_flash_sectors(ram_sectors: u64, flash_sectors: u64) -> Self {
        TieredCache {
            ram: RangeCache::with_capacity_sectors(ram_sectors),
            flash: Some(RangeCache::with_capacity_sectors(flash_sectors)),
            stats: TierStats::default(),
        }
    }

    /// A two-tier cache with byte budgets per tier.
    pub fn with_flash_bytes(ram_bytes: u64, flash_bytes: u64) -> Self {
        TieredCache {
            ram: RangeCache::with_capacity_bytes(ram_bytes),
            flash: Some(RangeCache::with_capacity_bytes(flash_bytes)),
            stats: TierStats::default(),
        }
    }

    /// Whether a flash tier is configured.
    pub fn has_flash(&self) -> bool {
        self.flash.is_some()
    }

    /// The RAM tier.
    pub fn ram(&self) -> &RangeCache {
        &self.ram
    }

    /// The flash tier, when configured.
    pub fn flash(&self) -> Option<&RangeCache> {
        self.flash.as_ref()
    }

    /// Tier-level event counters.
    pub fn stats(&self) -> TierStats {
        self.stats
    }

    /// Zeroes the tier counters, keeping contents intact. Sharded replays
    /// use this to normalize boundary seeds: contents must carry across
    /// the boundary while accounting restarts at zero and merges back
    /// fieldwise.
    pub fn reset_stats(&mut self) {
        self.stats = TierStats::default();
    }

    /// Looks `[pba, pba + sectors)` up RAM-first, then flash. A flash hit
    /// promotes the range into RAM (demoting RAM victims back to flash).
    pub fn lookup(&mut self, pba: Pba, sectors: u64) -> TierLookup {
        if self.ram.covers(pba, sectors) {
            self.stats.ram_hits += 1;
            return TierLookup::Ram;
        }
        let flash_hit = self
            .flash
            .as_mut()
            .is_some_and(|flash| flash.covers(pba, sectors));
        if flash_hit {
            self.stats.flash_hits += 1;
            self.stats.promotions += 1;
            self.admit(pba, sectors);
            TierLookup::Flash
        } else {
            self.stats.misses += 1;
            TierLookup::Miss
        }
    }

    /// Fills `[pba, pba + sectors)` into the RAM tier; RAM victims demote
    /// to flash (when configured) instead of being dropped.
    pub fn admit(&mut self, pba: Pba, sectors: u64) {
        match &mut self.flash {
            None => {
                self.ram.insert(pba, sectors);
            }
            Some(flash) => {
                // Two disjoint &mut borrows (ram + flash) — destructured
                // above so the closure can reach flash while ram evicts.
                let stats = &mut self.stats;
                self.ram.insert_evicting(pba, sectors, &mut |victim, len| {
                    stats.demoted_sectors += len;
                    stats.flash_evicted_sectors += flash.insert(victim, len);
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pba(s: u64) -> Pba {
        Pba::new(s)
    }

    #[test]
    fn single_tier_behaves_like_range_cache() {
        let mut tiered = TieredCache::single_sectors(30);
        let mut plain = RangeCache::with_capacity_sectors(30);
        for i in 0..20u64 {
            tiered.admit(pba(i * 100), 10);
            plain.insert(pba(i * 100), 10);
            assert_eq!(
                tiered.lookup(pba(i * 100 / 2), 10).is_hit(),
                plain.covers(pba(i * 100 / 2), 10),
                "step {i}"
            );
        }
        assert_eq!(tiered.ram(), &plain);
        assert_eq!(tiered.stats().flash_hits, 0);
        assert_eq!(tiered.stats().demoted_sectors, 0);
    }

    #[test]
    fn ram_eviction_demotes_to_flash() {
        let mut c = TieredCache::with_flash_sectors(20, 100);
        c.admit(pba(0), 10);
        c.admit(pba(100), 10);
        c.admit(pba(200), 10); // RAM over budget: [0,10) demotes
        assert_eq!(c.stats().demoted_sectors, 10);
        assert!(c.flash().unwrap().peek_covers(pba(0), 10));
        assert!(!c.ram().peek_covers(pba(0), 10));
        // A single-tier cache would miss here; the flash tier serves it.
        assert_eq!(c.lookup(pba(0), 10), TierLookup::Flash);
    }

    #[test]
    fn flash_hit_promotes_back_to_ram() {
        let mut c = TieredCache::with_flash_sectors(20, 100);
        c.admit(pba(0), 10);
        c.admit(pba(100), 10);
        c.admit(pba(200), 10); // [0,10) now in flash only
        assert_eq!(c.lookup(pba(0), 10), TierLookup::Flash);
        assert_eq!(c.stats().promotions, 1);
        // Promotion put it back in RAM (demoting the RAM LRU).
        assert_eq!(c.lookup(pba(0), 10), TierLookup::Ram);
        assert_eq!(c.stats().ram_hits, 1);
    }

    #[test]
    fn flash_overflow_counts_evicted_sectors() {
        let mut c = TieredCache::with_flash_sectors(10, 20);
        for i in 0..6u64 {
            c.admit(pba(i * 100), 10); // each demotion overflows flash
        }
        assert!(c.stats().flash_evicted_sectors > 0);
        assert!(c.flash().unwrap().sectors_used() <= 20);
    }

    #[test]
    fn miss_counts_once_across_both_tiers() {
        let mut c = TieredCache::with_flash_sectors(10, 20);
        assert_eq!(c.lookup(pba(0), 5), TierLookup::Miss);
        let s = c.stats();
        assert_eq!((s.ram_hits, s.flash_hits, s.misses), (0, 0, 1));
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn stats_merge_is_fieldwise() {
        let mut a = TierStats {
            ram_hits: 1,
            flash_hits: 2,
            misses: 3,
            promotions: 4,
            demoted_sectors: 5,
            flash_evicted_sectors: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.ram_hits, 2);
        assert_eq!(a.flash_evicted_sectors, 12);
        assert!((a.hit_rate() - 6.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = TieredCache::with_flash_sectors(20, 100);
        c.admit(pba(0), 10);
        c.admit(pba(100), 10);
        c.admit(pba(200), 10);
        c.reset_stats();
        assert_eq!(c.stats(), TierStats::default());
        assert_eq!(c.lookup(pba(0), 10), TierLookup::Flash, "contents intact");
    }

    #[test]
    fn serde_round_trip_preserves_lru_order() {
        let mut c = TieredCache::with_flash_sectors(20, 100);
        c.admit(pba(0), 10);
        c.admit(pba(100), 10);
        c.lookup(pba(0), 10); // refresh: [100,110) is now RAM LRU
        let json = serde_json::to_string(&c).expect("serializes");
        let mut back: TieredCache = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, c);
        back.admit(pba(200), 10);
        c.admit(pba(200), 10);
        assert_eq!(back, c, "same demotion victim after round trip");
    }
}
