//! A generic byte-budgeted LRU cache over keys.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    bytes: u64,
    prev: usize,
    next: usize,
}

/// An LRU cache that tracks keys with associated sizes against a byte
/// budget. All operations are O(1) expected time.
///
/// The cache stores no payloads — the simulator only needs presence and
/// recency, not data — so a multi-GB modeled cache costs a few bytes per
/// entry of host memory.
///
/// # Example
///
/// ```
/// use smrseek_cache::ByteLru;
///
/// let mut lru = ByteLru::new(100);
/// lru.insert("a", 40);
/// lru.insert("b", 40);
/// assert!(lru.touch(&"a"));            // "a" becomes most recent
/// let evicted = lru.insert("c", 40);   // evicts LRU entries to fit
/// assert_eq!(evicted, vec!["b"]);
/// assert!(lru.contains(&"a"));
/// ```
#[derive(Debug, Clone)]
pub struct ByteLru<K> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    bytes_used: u64,
    capacity_bytes: u64,
}

impl<K: Hash + Eq + Clone> ByteLru<K> {
    /// Creates a cache with the given byte budget.
    pub fn new(capacity_bytes: u64) -> Self {
        ByteLru {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes_used: 0,
            capacity_bytes,
        }
    }

    /// Byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently accounted to entries.
    pub fn bytes_used(&self) -> u64 {
        self.bytes_used
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns `true` if `key` is cached (without touching recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Marks `key` most-recently-used; returns `false` if absent.
    pub fn touch(&mut self, key: &K) -> bool {
        let Some(&idx) = self.map.get(key) else {
            return false;
        };
        self.unlink(idx);
        self.push_front(idx);
        true
    }

    /// Inserts `key` with size `bytes` (or refreshes its recency and size
    /// if present), then evicts least-recently-used entries until the
    /// budget holds. Returns the evicted keys, oldest first.
    ///
    /// An entry larger than the whole budget is admitted alone and evicted
    /// by the next insert.
    pub fn insert(&mut self, key: K, bytes: u64) -> Vec<K> {
        if let Some(&idx) = self.map.get(&key) {
            self.bytes_used = self.bytes_used - self.nodes[idx].bytes + bytes;
            self.nodes[idx].bytes = bytes;
            self.unlink(idx);
            self.push_front(idx);
        } else {
            let node = Node {
                key: key.clone(),
                bytes,
                prev: NIL,
                next: NIL,
            };
            let idx = match self.free.pop() {
                Some(i) => {
                    self.nodes[i] = node;
                    i
                }
                None => {
                    self.nodes.push(node);
                    self.nodes.len() - 1
                }
            };
            self.map.insert(key, idx);
            self.bytes_used += bytes;
            self.push_front(idx);
        }
        self.evict_to_budget()
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(idx) = self.map.remove(key) else {
            return false;
        };
        self.unlink(idx);
        self.bytes_used -= self.nodes[idx].bytes;
        self.free.push(idx);
        true
    }

    /// The least-recently-used key, if any.
    pub fn lru_key(&self) -> Option<&K> {
        (self.tail != NIL).then(|| &self.nodes[self.tail].key)
    }

    /// Keys from most- to least-recently-used.
    pub fn keys_by_recency(&self) -> Vec<&K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(&self.nodes[cur].key);
            cur = self.nodes[cur].next;
        }
        out
    }

    fn evict_to_budget(&mut self) -> Vec<K> {
        let mut evicted = Vec::new();
        while self.bytes_used > self.capacity_bytes && self.map.len() > 1 {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let key = self.nodes[victim].key.clone();
            self.map.remove(&key);
            self.unlink(victim);
            self.bytes_used -= self.nodes[victim].bytes;
            self.free.push(victim);
            evicted.push(key);
        }
        evicted
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut lru = ByteLru::new(100);
        assert!(lru.is_empty());
        assert!(lru.insert(1, 40).is_empty());
        assert!(lru.contains(&1));
        assert!(!lru.contains(&2));
        assert_eq!(lru.bytes_used(), 40);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut lru = ByteLru::new(100);
        lru.insert('a', 40);
        lru.insert('b', 40);
        lru.touch(&'a');
        let evicted = lru.insert('c', 40); // must evict b (LRU), not a
        assert_eq!(evicted, vec!['b']);
        assert!(lru.contains(&'a'));
        assert!(lru.contains(&'c'));
        assert_eq!(lru.bytes_used(), 80);
    }

    #[test]
    fn multi_eviction() {
        let mut lru = ByteLru::new(100);
        lru.insert(1, 30);
        lru.insert(2, 30);
        lru.insert(3, 30);
        let evicted = lru.insert(4, 90);
        assert_eq!(evicted, vec![1, 2, 3]);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn oversized_entry_admitted_alone() {
        let mut lru = ByteLru::new(50);
        lru.insert(1, 10);
        let evicted = lru.insert(2, 500);
        assert_eq!(evicted, vec![1]);
        assert!(lru.contains(&2));
        assert_eq!(lru.len(), 1); // never evicts below one entry
        let evicted = lru.insert(3, 10);
        assert_eq!(evicted, vec![2]);
    }

    #[test]
    fn reinsert_updates_size_and_recency() {
        let mut lru = ByteLru::new(100);
        lru.insert('a', 40);
        lru.insert('b', 40);
        lru.insert('a', 60); // resize + move to front
        assert_eq!(lru.bytes_used(), 100);
        let evicted = lru.insert('c', 40);
        assert_eq!(evicted, vec!['b']);
    }

    #[test]
    fn remove_frees_budget() {
        let mut lru = ByteLru::new(100);
        lru.insert(1, 60);
        assert!(lru.remove(&1));
        assert!(!lru.remove(&1));
        assert_eq!(lru.bytes_used(), 0);
        assert!(lru.insert(2, 100).is_empty());
    }

    #[test]
    fn recency_listing() {
        let mut lru = ByteLru::new(1000);
        for k in 0..4 {
            lru.insert(k, 1);
        }
        lru.touch(&0);
        assert_eq!(lru.keys_by_recency(), vec![&0, &3, &2, &1]);
        assert_eq!(lru.lru_key(), Some(&1));
    }

    #[test]
    fn touch_missing_is_false() {
        let mut lru: ByteLru<u32> = ByteLru::new(10);
        assert!(!lru.touch(&9));
        assert_eq!(lru.lru_key(), None);
    }

    #[test]
    fn slab_reuse_after_heavy_churn() {
        let mut lru = ByteLru::new(10);
        for i in 0..1000u32 {
            lru.insert(i, 4);
        }
        assert!(lru.len() <= 3);
        // Slab should not have grown unboundedly.
        assert!(lru.nodes.len() <= 16, "slab grew to {}", lru.nodes.len());
    }
}
