//! An LRU-evicted cache of sector ranges in physical (PBA) space.

use serde::{Deserialize, Serialize};
use smrseek_trace::{Pba, SECTOR_SIZE};
use std::collections::BTreeMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Node {
    start: u64,
    sectors: u64,
    prev: usize,
    next: usize,
}

/// Aggregate hit/miss statistics of a [`RangeCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeCacheStats {
    /// `covers` queries answered `true`.
    pub hits: u64,
    /// `covers` queries answered `false`.
    pub misses: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
}

impl RangeCacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no queries were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU-evicted set of disjoint sector ranges over PBA space with a byte
/// budget.
///
/// This models a data cache indexed by physical location (the paper's
/// selective-caching fragments and prefetch buffers are both such caches):
/// only presence and recency are tracked, not payloads. In a log-structured
/// system physical sectors are written once and never re-used (infinite
/// disk), so entries never become incoherent — superseded data simply stops
/// being referenced and ages out.
///
/// Ranges are stored at insert granularity (entries are not merged), so LRU
/// eviction keeps the granularity of the original insertions.
///
/// # Example
///
/// ```
/// use smrseek_cache::RangeCache;
/// use smrseek_trace::Pba;
///
/// let mut c = RangeCache::with_capacity_sectors(64);
/// c.insert(Pba::new(100), 16);
/// c.insert(Pba::new(116), 16); // adjacent but separately evictable
/// assert!(c.covers(Pba::new(100), 32));
/// assert!(!c.covers(Pba::new(96), 8)); // partially outside
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeCache {
    by_start: BTreeMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    sectors_used: u64,
    capacity_sectors: u64,
    stats: RangeCacheStats,
}

impl RangeCache {
    /// Creates a cache with a budget of `capacity_sectors` sectors.
    pub fn with_capacity_sectors(capacity_sectors: u64) -> Self {
        RangeCache {
            by_start: BTreeMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            sectors_used: 0,
            capacity_sectors,
            stats: RangeCacheStats::default(),
        }
    }

    /// Creates a cache with a budget of `capacity_bytes` bytes (rounded
    /// down to whole sectors).
    pub fn with_capacity_bytes(capacity_bytes: u64) -> Self {
        Self::with_capacity_sectors(capacity_bytes / SECTOR_SIZE)
    }

    /// Budget in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.capacity_sectors
    }

    /// Cached sectors.
    pub fn sectors_used(&self) -> u64 {
        self.sectors_used
    }

    /// Cached bytes.
    pub fn bytes_used(&self) -> u64 {
        self.sectors_used * SECTOR_SIZE
    }

    /// Number of cached ranges.
    pub fn len(&self) -> usize {
        self.by_start.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.by_start.is_empty()
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> RangeCacheStats {
        self.stats
    }

    /// Returns `true` — and refreshes the recency of every involved entry —
    /// if `[pba, pba + sectors)` is entirely covered by cached ranges.
    ///
    /// Zero-length queries are vacuously covered and counted as hits.
    pub fn covers(&mut self, pba: Pba, sectors: u64) -> bool {
        match self.covering_nodes(pba.sector(), sectors) {
            Some(involved) => {
                for idx in involved {
                    self.unlink(idx);
                    self.push_front(idx);
                }
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Like [`covers`](Self::covers) but without touching recency or
    /// counting toward statistics.
    pub fn peek_covers(&self, pba: Pba, sectors: u64) -> bool {
        self.covering_nodes(pba.sector(), sectors).is_some()
    }

    /// Inserts `[pba, pba + sectors)`, creating entries only for the
    /// currently-uncovered gaps (existing overlapping entries are touched),
    /// then evicts least-recently-used ranges to fit the budget. Returns
    /// the number of sectors evicted.
    pub fn insert(&mut self, pba: Pba, sectors: u64) -> u64 {
        self.insert_evicting(pba, sectors, &mut |_, _| {})
    }

    /// Like [`insert`](Self::insert), but reports each evicted range to
    /// `on_evict` as `(start, sectors)` in eviction (LRU-first) order.
    /// Multi-level caches use this to demote RAM victims to a lower tier
    /// instead of dropping them.
    pub fn insert_evicting(
        &mut self,
        pba: Pba,
        sectors: u64,
        on_evict: &mut dyn FnMut(Pba, u64),
    ) -> u64 {
        if sectors == 0 {
            return 0;
        }
        let start = pba.sector();
        let end = start + sectors;
        let mut gaps: Vec<(u64, u64)> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        let mut cursor = start;

        if let Some((&_es, &idx)) = self.by_start.range(..start).next_back() {
            let n = &self.nodes[idx];
            if n.start + n.sectors > start {
                touched.push(idx);
                cursor = (n.start + n.sectors).min(end);
            }
        }
        let in_range: Vec<usize> = self.by_start.range(start..end).map(|(_, &i)| i).collect();
        for idx in in_range {
            let (es, elen) = (self.nodes[idx].start, self.nodes[idx].sectors);
            if es > cursor {
                gaps.push((cursor, es - cursor));
            }
            touched.push(idx);
            cursor = (es + elen).min(end).max(cursor);
        }
        if cursor < end {
            gaps.push((cursor, end - cursor));
        }
        for idx in touched {
            self.unlink(idx);
            self.push_front(idx);
        }
        for (gs, glen) in gaps {
            let idx = self.alloc_node(gs, glen);
            self.by_start.insert(gs, idx);
            self.sectors_used += glen;
            self.push_front(idx);
        }
        self.evict_to_budget(on_evict)
    }

    /// Drops every cached range.
    pub fn clear(&mut self) {
        self.by_start.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.sectors_used = 0;
    }

    /// Cached ranges in PBA order as `(start, sectors)` pairs.
    pub fn ranges(&self) -> Vec<(Pba, u64)> {
        self.by_start
            .iter()
            .map(|(_, &i)| (Pba::new(self.nodes[i].start), self.nodes[i].sectors))
            .collect()
    }

    /// Returns the node indices covering `[start, start + sectors)` in
    /// full, or `None` if any sector is uncovered. Never mutates.
    fn covering_nodes(&self, start: u64, sectors: u64) -> Option<Vec<usize>> {
        let end = start + sectors;
        let mut cursor = start;
        let mut involved: Vec<usize> = Vec::new();
        if let Some((_, &idx)) = self.by_start.range(..=start).next_back() {
            let n = &self.nodes[idx];
            if n.start + n.sectors > start {
                involved.push(idx);
                cursor = (n.start + n.sectors).min(end);
            }
        }
        if cursor < end {
            for (_, &idx) in self.by_start.range(start + 1..end) {
                let n = &self.nodes[idx];
                if n.start > cursor {
                    return None; // gap
                }
                involved.push(idx);
                cursor = (n.start + n.sectors).min(end).max(cursor);
                if cursor >= end {
                    break;
                }
            }
        }
        (cursor >= end).then_some(involved)
    }

    fn alloc_node(&mut self, start: u64, sectors: u64) -> usize {
        let node = Node {
            start,
            sectors,
            prev: NIL,
            next: NIL,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    fn evict_to_budget(&mut self, on_evict: &mut dyn FnMut(Pba, u64)) -> u64 {
        let mut evicted = 0;
        while self.sectors_used > self.capacity_sectors && self.by_start.len() > 1 {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            let (start, len) = (self.nodes[victim].start, self.nodes[victim].sectors);
            self.by_start.remove(&start);
            self.unlink(victim);
            self.sectors_used -= len;
            self.free.push(victim);
            evicted += len;
            self.stats.evictions += 1;
            on_evict(Pba::new(start), len);
        }
        evicted
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pba(s: u64) -> Pba {
        Pba::new(s)
    }

    #[test]
    fn empty_cache_covers_nothing() {
        let mut c = RangeCache::with_capacity_sectors(100);
        assert!(c.is_empty());
        assert!(!c.covers(pba(0), 1));
        assert!(c.covers(pba(0), 0)); // vacuous
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn exact_and_partial_coverage() {
        let mut c = RangeCache::with_capacity_sectors(100);
        c.insert(pba(10), 10);
        assert!(c.covers(pba(10), 10));
        assert!(c.covers(pba(12), 4));
        assert!(!c.covers(pba(5), 10));
        assert!(!c.covers(pba(15), 10));
        assert!(!c.covers(pba(30), 1));
    }

    #[test]
    fn coverage_across_multiple_entries() {
        let mut c = RangeCache::with_capacity_sectors(100);
        c.insert(pba(0), 10);
        c.insert(pba(10), 10);
        c.insert(pba(20), 10);
        assert!(c.covers(pba(5), 20)); // spans three entries
        c.insert(pba(40), 5);
        assert!(!c.covers(pba(25), 20)); // gap [30,40)
    }

    #[test]
    fn insert_fills_only_gaps() {
        let mut c = RangeCache::with_capacity_sectors(100);
        c.insert(pba(10), 10);
        c.insert(pba(5), 20); // covers [5,10) and [20,25) as new entries
        assert_eq!(c.sectors_used(), 20);
        assert_eq!(c.len(), 3);
        assert!(c.covers(pba(5), 20));
    }

    #[test]
    fn eviction_is_lru_over_ranges() {
        let mut c = RangeCache::with_capacity_sectors(30);
        c.insert(pba(0), 10);
        c.insert(pba(100), 10);
        c.insert(pba(200), 10);
        assert!(c.covers(pba(0), 10)); // refresh the oldest
        c.insert(pba(300), 10); // must evict [100,110)
        assert!(c.peek_covers(pba(0), 10));
        assert!(!c.peek_covers(pba(100), 10));
        assert!(c.peek_covers(pba(200), 10));
        assert!(c.peek_covers(pba(300), 10));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.sectors_used(), 30);
    }

    #[test]
    fn peek_does_not_touch() {
        let mut c = RangeCache::with_capacity_sectors(20);
        c.insert(pba(0), 10);
        c.insert(pba(100), 10);
        assert!(c.peek_covers(pba(0), 10)); // would refresh if it touched
        c.insert(pba(200), 10); // evicts true LRU: [0,10)
        assert!(!c.peek_covers(pba(0), 10));
        assert!(c.peek_covers(pba(100), 10));
    }

    #[test]
    fn covering_query_protects_from_eviction() {
        let mut c = RangeCache::with_capacity_sectors(20);
        c.insert(pba(0), 10);
        c.insert(pba(100), 10);
        assert!(c.covers(pba(0), 10)); // touch
        c.insert(pba(200), 10); // evicts [100,110)
        assert!(c.peek_covers(pba(0), 10));
        assert!(!c.peek_covers(pba(100), 10));
    }

    #[test]
    fn byte_capacity_constructor() {
        let c = RangeCache::with_capacity_bytes(64 * 1024 * 1024);
        assert_eq!(c.capacity_sectors(), 131_072);
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut c = RangeCache::with_capacity_sectors(100);
        c.insert(pba(0), 50);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.sectors_used(), 0);
        assert!(!c.covers(pba(0), 1));
        c.insert(pba(0), 10);
        assert!(c.covers(pba(0), 10));
    }

    #[test]
    fn ranges_listing_sorted() {
        let mut c = RangeCache::with_capacity_sectors(100);
        c.insert(pba(50), 5);
        c.insert(pba(0), 5);
        assert_eq!(c.ranges(), vec![(pba(0), 5), (pba(50), 5)]);
    }

    #[test]
    fn overlapping_insert_touches_existing() {
        let mut c = RangeCache::with_capacity_sectors(25);
        c.insert(pba(0), 10);
        c.insert(pba(100), 10);
        // Overlapping insert refreshes [0,10) and adds [10,15).
        c.insert(pba(0), 15);
        c.insert(pba(200), 10); // evicts LRU = [100,110)
        assert!(c.peek_covers(pba(0), 15));
        assert!(!c.peek_covers(pba(100), 10));
    }

    #[test]
    fn insert_evicting_reports_victims_lru_first() {
        let mut c = RangeCache::with_capacity_sectors(30);
        c.insert(pba(0), 10);
        c.insert(pba(100), 10);
        c.insert(pba(200), 10);
        let mut victims = Vec::new();
        let n = c.insert_evicting(pba(300), 20, &mut |p, len| victims.push((p, len)));
        assert_eq!(n, 20);
        assert_eq!(victims, vec![(pba(0), 10), (pba(100), 10)]);
        assert!(!c.peek_covers(pba(0), 1));
        assert!(c.peek_covers(pba(200), 10));
        assert!(c.peek_covers(pba(300), 20));
    }

    #[test]
    fn heavy_churn_reuses_slab() {
        let mut c = RangeCache::with_capacity_sectors(64);
        for i in 0..10_000u64 {
            c.insert(pba(i * 1000), 32);
        }
        assert!(c.nodes.len() <= 64, "slab grew to {}", c.nodes.len());
        assert!(c.sectors_used() <= 64);
    }
}
