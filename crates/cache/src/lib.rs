//! Caching substrates for the seek-reduction mechanisms.
//!
//! Two of the paper's three mechanisms are caches over *physical* address
//! ranges:
//!
//! * **translation-aware selective caching** (§IV-C) keeps the fragments of
//!   fragmented reads in a small (64 MB in the paper) LRU-evicted cache;
//! * **translation-aware look-ahead-behind prefetching** (§IV-B) fills a
//!   drive-sized buffer with the sectors physically before and after each
//!   fragment it reads.
//!
//! Both are built on [`RangeCache`], an LRU-evicted set of sector ranges in
//! PBA space with a byte budget. A generic keyed [`ByteLru`] is provided as
//! the simpler building block and for ablation experiments. [`TieredCache`]
//! stacks a simulated flash tier behind the RAM tier (demotion on RAM
//! eviction, promotion on flash hit) for the adaptive policy subsystem.
//!
//! # Example
//!
//! ```
//! use smrseek_cache::RangeCache;
//! use smrseek_trace::{Pba, MIB};
//!
//! let mut cache = RangeCache::with_capacity_bytes(64 * MIB);
//! cache.insert(Pba::new(1000), 16);
//! assert!(cache.covers(Pba::new(1004), 8));
//! assert!(!cache.covers(Pba::new(1004), 16));
//! ```

#![warn(missing_docs)]
pub mod lru;
pub mod range;
pub mod tier;

pub use lru::ByteLru;
pub use range::RangeCache;
pub use tier::{TierLookup, TierStats, TieredCache};
