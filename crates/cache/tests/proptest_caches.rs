//! Property tests: `ByteLru` against a naive recency-list model, and
//! `RangeCache` against a per-sector timestamp model.

use proptest::prelude::*;
use smrseek_cache::{ByteLru, RangeCache};
use smrseek_trace::Pba;
use std::collections::HashMap;

// ---------- ByteLru vs naive model ----------

#[derive(Debug, Clone)]
enum LruOp {
    Insert(u16, u64),
    Touch(u16),
    Remove(u16),
}

fn lru_ops() -> impl Strategy<Value = Vec<LruOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u16..64, 1u64..50).prop_map(|(k, b)| LruOp::Insert(k, b)),
            1 => (0u16..64).prop_map(LruOp::Touch),
            1 => (0u16..64).prop_map(LruOp::Remove),
        ],
        1..120,
    )
}

/// Naive model: vector ordered most-recent-first.
#[derive(Default)]
struct LruModel {
    entries: Vec<(u16, u64)>, // (key, bytes), MRU first
    capacity: u64,
}

impl LruModel {
    fn bytes(&self) -> u64 {
        self.entries.iter().map(|&(_, b)| b).sum()
    }

    fn apply(&mut self, op: &LruOp) -> Vec<u16> {
        match *op {
            LruOp::Insert(k, b) => {
                self.entries.retain(|&(key, _)| key != k);
                self.entries.insert(0, (k, b));
                let mut evicted = Vec::new();
                while self.bytes() > self.capacity && self.entries.len() > 1 {
                    let (k, _) = self.entries.pop().expect("nonempty");
                    evicted.push(k);
                }
                evicted
            }
            LruOp::Touch(k) => {
                if let Some(pos) = self.entries.iter().position(|&(key, _)| key == k) {
                    let e = self.entries.remove(pos);
                    self.entries.insert(0, e);
                }
                Vec::new()
            }
            LruOp::Remove(k) => {
                self.entries.retain(|&(key, _)| key != k);
                Vec::new()
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn byte_lru_matches_model(ops in lru_ops(), capacity in 50u64..400) {
        let mut lru = ByteLru::new(capacity);
        let mut model = LruModel {
            capacity,
            ..LruModel::default()
        };
        for op in &ops {
            let evicted_model = model.apply(op);
            let evicted_real = match *op {
                LruOp::Insert(k, b) => lru.insert(k, b),
                LruOp::Touch(k) => {
                    lru.touch(&k);
                    Vec::new()
                }
                LruOp::Remove(k) => {
                    lru.remove(&k);
                    Vec::new()
                }
            };
            prop_assert_eq!(&evicted_real, &evicted_model, "op {:?}", op);
            prop_assert_eq!(lru.bytes_used(), model.bytes());
            prop_assert_eq!(lru.len(), model.entries.len());
        }
        // Final recency order matches exactly.
        let real: Vec<u16> = lru.keys_by_recency().into_iter().copied().collect();
        let want: Vec<u16> = model.entries.iter().map(|&(k, _)| k).collect();
        prop_assert_eq!(real, want);
    }
}

// ---------- RangeCache vs per-sector model ----------

#[derive(Debug, Clone)]
enum RangeOp {
    Insert(u64, u64),
    Covers(u64, u64),
}

fn range_ops() -> impl Strategy<Value = Vec<RangeOp>> {
    prop::collection::vec(
        prop_oneof![
            2 => (0u64..512, 1u64..48).prop_map(|(s, l)| RangeOp::Insert(s, l)),
            1 => (0u64..512, 1u64..64).prop_map(|(s, l)| RangeOp::Covers(s, l)),
        ],
        1..100,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// With an effectively unbounded budget, `covers` must answer exactly
    /// "was every sector of the range inserted before".
    #[test]
    fn range_cache_coverage_matches_model(ops in range_ops()) {
        let mut cache = RangeCache::with_capacity_sectors(1 << 20);
        let mut model: HashMap<u64, ()> = HashMap::new();
        for op in &ops {
            match *op {
                RangeOp::Insert(s, l) => {
                    cache.insert(Pba::new(s), l);
                    for x in s..s + l {
                        model.insert(x, ());
                    }
                }
                RangeOp::Covers(s, l) => {
                    let want = (s..s + l).all(|x| model.contains_key(&x));
                    prop_assert_eq!(
                        cache.covers(Pba::new(s), l),
                        want,
                        "covers({}, {})", s, l
                    );
                    prop_assert_eq!(cache.peek_covers(Pba::new(s), l), want);
                }
            }
            // Accounting: cached sectors equal distinct inserted sectors.
            prop_assert_eq!(cache.sectors_used(), model.len() as u64);
        }
    }

    /// Under a tight budget the cache never exceeds it (beyond the single
    /// oversized-entry allowance) and never reports uninserted sectors.
    #[test]
    fn range_cache_respects_budget(ops in range_ops(), budget in 16u64..128) {
        let mut cache = RangeCache::with_capacity_sectors(budget);
        let mut inserted: HashMap<u64, ()> = HashMap::new();
        // The cache never evicts below one entry, so a single oversized
        // insert may linger; the allowance tracks the largest insert seen.
        let mut max_insert = 0u64;
        for op in &ops {
            match *op {
                RangeOp::Insert(s, l) => {
                    cache.insert(Pba::new(s), l);
                    max_insert = max_insert.max(l);
                    for x in s..s + l {
                        inserted.insert(x, ());
                    }
                    prop_assert!(
                        cache.sectors_used() <= budget.max(max_insert),
                        "budget {} exceeded: {}",
                        budget,
                        cache.sectors_used()
                    );
                }
                RangeOp::Covers(s, l) => {
                    if cache.covers(Pba::new(s), l) {
                        // No false positives: everything covered was
                        // inserted at some point.
                        for x in s..s + l {
                            prop_assert!(inserted.contains_key(&x));
                        }
                    }
                }
            }
        }
    }
}
