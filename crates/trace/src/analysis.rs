//! Deeper trace analyses behind the paper's workload observations.
//!
//! Three lenses that explain *why* a workload is log-friendly or
//! log-sensitive before any simulation runs:
//!
//! * [`overwrite_intervals`] — how quickly written data is overwritten
//!   (short intervals ⇒ churn the log absorbs; §III's write-intensive
//!   MSR workloads),
//! * [`wss_series`] — working-set size per window (the diurnal phases of
//!   Fig 3 show up here as WSS swings),
//! * [`read_after_write_fraction`] — how much read traffic targets data
//!   written earlier in the trace (the reads that can be fragmented at
//!   all; reads of pre-trace data always come from the identity area).

use crate::record::{OpKind, TraceRecord};
use std::collections::HashMap;

/// Analysis granularity: one 4 KiB block = 8 sectors.
const BLOCK_SECTORS: u64 = 8;

fn blocks_of(rec: &TraceRecord) -> impl Iterator<Item = u64> {
    let first = rec.lba.sector() / BLOCK_SECTORS;
    let last = (rec.end().sector().saturating_sub(1)) / BLOCK_SECTORS;
    first..=last
}

/// For every write that overwrites a 4 KiB block written earlier in the
/// trace, the number of intervening *write operations* since that block
/// was last written. Short intervals mean hot churn; an empty result means
/// the trace never overwrites (the archival regime).
pub fn overwrite_intervals(records: &[TraceRecord]) -> Vec<u64> {
    let mut last_write: HashMap<u64, u64> = HashMap::new();
    let mut intervals = Vec::new();
    let mut write_index = 0u64;
    for rec in records {
        if rec.op != OpKind::Write {
            continue;
        }
        for block in blocks_of(rec) {
            if let Some(prev) = last_write.insert(block, write_index) {
                intervals.push(write_index - prev);
            }
        }
        write_index += 1;
    }
    intervals
}

/// Distinct 4 KiB blocks touched (read or written) in each consecutive
/// window of `window_ops` operations — the working-set-size series.
///
/// # Panics
///
/// Panics if `window_ops` is zero.
pub fn wss_series(records: &[TraceRecord], window_ops: usize) -> Vec<u64> {
    assert!(window_ops > 0, "window must be positive");
    records
        .chunks(window_ops)
        .map(|window| {
            let mut blocks: HashMap<u64, ()> = HashMap::new();
            for rec in window {
                for block in blocks_of(rec) {
                    blocks.insert(block, ());
                }
            }
            blocks.len() as u64
        })
        .collect()
}

/// Fraction of read *bytes* that target blocks written earlier in the
/// trace, in `[0, 1]`. Only these reads can be fragmented by
/// log-structured translation; the remainder always reads from the
/// identity area.
pub fn read_after_write_fraction(records: &[TraceRecord]) -> f64 {
    let mut written: HashMap<u64, ()> = HashMap::new();
    let mut read_blocks = 0u64;
    let mut read_after_write_blocks = 0u64;
    for rec in records {
        match rec.op {
            OpKind::Write => {
                for block in blocks_of(rec) {
                    written.insert(block, ());
                }
            }
            OpKind::Read => {
                for block in blocks_of(rec) {
                    read_blocks += 1;
                    if written.contains_key(&block) {
                        read_after_write_blocks += 1;
                    }
                }
            }
        }
    }
    if read_blocks == 0 {
        0.0
    } else {
        read_after_write_blocks as f64 / read_blocks as f64
    }
}

/// Summary of the three analyses, for reports.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct AnalysisSummary {
    /// Number of overwrite events.
    pub overwrites: usize,
    /// Median overwrite interval in write ops (`None` without overwrites).
    pub median_overwrite_interval: Option<u64>,
    /// Mean working-set size per 1000-op window, in 4 KiB blocks.
    pub mean_wss_blocks: f64,
    /// Peak working-set size, in 4 KiB blocks.
    pub peak_wss_blocks: u64,
    /// Fraction of read bytes targeting trace-written data.
    pub read_after_write: f64,
}

/// Computes the [`AnalysisSummary`] with 1000-op WSS windows.
pub fn summarize(records: &[TraceRecord]) -> AnalysisSummary {
    let mut intervals = overwrite_intervals(records);
    intervals.sort_unstable();
    let median = (!intervals.is_empty()).then(|| intervals[intervals.len() / 2]);
    let wss = wss_series(records, 1000);
    let mean_wss = if wss.is_empty() {
        0.0
    } else {
        wss.iter().sum::<u64>() as f64 / wss.len() as f64
    };
    AnalysisSummary {
        overwrites: intervals.len(),
        median_overwrite_interval: median,
        mean_wss_blocks: mean_wss,
        peak_wss_blocks: wss.iter().copied().max().unwrap_or(0),
        read_after_write: read_after_write_fraction(records),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Lba;

    fn w(t: u64, lba: u64, sectors: u32) -> TraceRecord {
        TraceRecord::write(t, Lba::new(lba), sectors)
    }
    fn r(t: u64, lba: u64, sectors: u32) -> TraceRecord {
        TraceRecord::read(t, Lba::new(lba), sectors)
    }

    #[test]
    fn no_overwrites_in_append_only_trace() {
        let trace: Vec<_> = (0..10).map(|i| w(i, i * 8, 8)).collect();
        assert!(overwrite_intervals(&trace).is_empty());
        let s = summarize(&trace);
        assert_eq!(s.overwrites, 0);
        assert_eq!(s.median_overwrite_interval, None);
    }

    #[test]
    fn overwrite_interval_counts_intervening_writes() {
        let trace = vec![
            w(0, 0, 8),   // write block 0  (write #0)
            w(1, 80, 8),  // unrelated      (write #1)
            w(2, 160, 8), // unrelated      (write #2)
            w(3, 0, 8),   // overwrite block 0 at write #3: interval 3
        ];
        assert_eq!(overwrite_intervals(&trace), vec![3]);
    }

    #[test]
    fn sub_block_writes_count_once_per_block() {
        let trace = vec![
            w(0, 0, 16), // blocks 0 and 1
            w(1, 4, 8),  // straddles blocks 0 and 1: two overwrite events
        ];
        assert_eq!(overwrite_intervals(&trace), vec![1, 1]);
    }

    #[test]
    fn reads_do_not_advance_write_clock() {
        let trace = vec![w(0, 0, 8), r(1, 0, 8), r(2, 0, 8), w(3, 0, 8)];
        assert_eq!(overwrite_intervals(&trace), vec![1]);
    }

    #[test]
    fn wss_counts_distinct_blocks_per_window() {
        let trace = vec![
            w(0, 0, 8),
            w(1, 0, 8),   // same block: still 1 distinct
            r(2, 80, 16), // blocks 10, 11
            w(3, 800, 8),
        ];
        assert_eq!(wss_series(&trace, 2), vec![1, 3]);
        assert_eq!(wss_series(&trace, 10), vec![4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn wss_zero_window_panics() {
        wss_series(&[], 0);
    }

    #[test]
    fn read_after_write_fraction_splits_correctly() {
        let trace = vec![
            w(0, 0, 8),   // block 0 written
            r(1, 0, 8),   // read of written data
            r(2, 800, 8), // read of pre-trace data
        ];
        assert!((read_after_write_fraction(&trace) - 0.5).abs() < 1e-12);
        assert_eq!(read_after_write_fraction(&[w(0, 0, 8)]), 0.0);
    }

    #[test]
    fn order_matters_for_read_after_write() {
        // A read *before* the write targets pre-trace data.
        let trace = vec![r(0, 0, 8), w(1, 0, 8), r(2, 0, 8)];
        assert!((read_after_write_fraction(&trace) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_is_consistent() {
        let trace: Vec<_> = (0..50)
            .map(|i| {
                if i % 2 == 0 {
                    w(i, (i % 10) * 8, 8)
                } else {
                    r(i, (i % 10) * 8, 8)
                }
            })
            .collect();
        let s = summarize(&trace);
        assert!(s.overwrites > 0);
        assert!(s.median_overwrite_interval.is_some());
        assert!(s.mean_wss_blocks > 0.0);
        assert!(s.peak_wss_blocks >= s.mean_wss_blocks as u64);
        assert!((0.0..=1.0).contains(&s.read_after_write));
    }
}
