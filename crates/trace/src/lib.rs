//! Block I/O trace model and tooling for the `smrseek` workspace.
//!
//! This crate is the foundation of the seek-amplification study from
//! *"Minimizing Read Seeks for SMR Disk"* (IISWC 2018): every other crate
//! consumes the [`TraceRecord`] stream defined here.
//!
//! It provides:
//!
//! * strongly-typed addressing ([`Lba`], [`Pba`], [`SECTOR_SIZE`]) in
//!   512-byte sectors,
//! * the trace record model ([`TraceRecord`], [`OpKind`]),
//! * parsers for the on-disk formats the paper's workloads come in
//!   ([`parse::msr`] for the SNIA MSR Cambridge CSV format and
//!   [`parse::cloudphysics`] for a CloudPhysics-style CSV), plus a compact
//!   [`binary`] format for fast replay — streamable via
//!   [`binary::BinaryRecordIter`] and mappable zero-copy via
//!   [`binary::MmapTrace`],
//! * stream adaptors ([`stream`]) to sort, merge, sample and window traces,
//! * and workload characterization ([`stats`]) reproducing the columns of
//!   Table I in the paper.
//!
//! # Example
//!
//! ```
//! use smrseek_trace::{Lba, OpKind, TraceRecord};
//!
//! let rec = TraceRecord::new(42, OpKind::Read, Lba::new(1024), 8);
//! assert_eq!(rec.end(), Lba::new(1032));
//! assert_eq!(rec.len_bytes(), 4096);
//! ```

#![warn(missing_docs)]
pub mod analysis;
pub mod binary;
pub mod digest;
pub mod error;
pub mod parse;
pub mod record;
pub mod stats;
pub mod stream;
pub mod types;
pub mod writer;

pub use analysis::{summarize, AnalysisSummary};
pub use digest::{TraceDigest, TraceDigester};
pub use error::{Error, Result};
pub use record::{OpKind, TraceRecord};
pub use stats::{characterize, TraceStats};
pub use types::{bytes_to_sectors_ceil, sectors_to_bytes, Lba, Pba, GIB, KIB, MIB, SECTOR_SIZE};
