//! Strongly-typed block addressing.
//!
//! Everything in the workspace is addressed in **512-byte sectors**. Two
//! newtypes keep the two address spaces of a translation layer apart:
//!
//! * [`Lba`] — *logical* block address, the address space the host sees.
//! * [`Pba`] — *physical* block address, the address space of the medium
//!   (where the log's write frontier advances).
//!
//! Mixing the two is a classic translation-layer bug; the newtypes make it a
//! compile error (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of one sector in bytes. All addresses count sectors of this size.
pub const SECTOR_SIZE: u64 = 512;

/// One kibibyte in bytes.
pub const KIB: u64 = 1024;
/// One mebibyte in bytes.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * MIB;

/// Converts a byte count to the number of sectors that fully cover it.
///
/// # Example
///
/// ```
/// use smrseek_trace::bytes_to_sectors_ceil;
/// assert_eq!(bytes_to_sectors_ceil(0), 0);
/// assert_eq!(bytes_to_sectors_ceil(1), 1);
/// assert_eq!(bytes_to_sectors_ceil(512), 1);
/// assert_eq!(bytes_to_sectors_ceil(513), 2);
/// ```
pub const fn bytes_to_sectors_ceil(bytes: u64) -> u64 {
    bytes.div_ceil(SECTOR_SIZE)
}

/// Converts a sector count to bytes.
///
/// # Example
///
/// ```
/// use smrseek_trace::sectors_to_bytes;
/// assert_eq!(sectors_to_bytes(8), 4096);
/// ```
pub const fn sectors_to_bytes(sectors: u64) -> u64 {
    sectors * SECTOR_SIZE
}

macro_rules! address_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            /// Address zero.
            pub const ZERO: $name = $name(0);
            /// The maximum representable address.
            pub const MAX: $name = $name(u64::MAX);

            /// Creates an address from a raw sector number.
            pub const fn new(sector: u64) -> Self {
                $name(sector)
            }

            /// Creates an address from a byte offset, which must be
            /// sector-aligned in well-formed traces; unaligned offsets are
            /// rounded **down** to the containing sector.
            pub const fn from_bytes(bytes: u64) -> Self {
                $name(bytes / SECTOR_SIZE)
            }

            /// Returns the raw sector number.
            pub const fn sector(self) -> u64 {
                self.0
            }

            /// Returns the byte offset of the start of this sector.
            pub const fn to_bytes(self) -> u64 {
                self.0 * SECTOR_SIZE
            }

            /// Signed distance in sectors from `other` to `self`
            /// (positive when `self` is above `other`).
            ///
            /// Saturates at `i64::MIN`/`i64::MAX` for distances that do not
            /// fit, which cannot occur for realistic device sizes.
            pub fn distance_from(self, other: $name) -> i64 {
                if self.0 >= other.0 {
                    i64::try_from(self.0 - other.0).unwrap_or(i64::MAX)
                } else {
                    i64::try_from(other.0 - self.0)
                        .map(|d| -d)
                        .unwrap_or(i64::MIN)
                }
            }

            /// Checked addition of a sector count.
            pub fn checked_add(self, sectors: u64) -> Option<Self> {
                self.0.checked_add(sectors).map($name)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<u64> for $name {
            fn from(sector: u64) -> Self {
                $name(sector)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            fn add(self, sectors: u64) -> $name {
                $name(self.0 + sectors)
            }
        }

        impl AddAssign<u64> for $name {
            fn add_assign(&mut self, sectors: u64) {
                self.0 += sectors;
            }
        }

        impl Sub<u64> for $name {
            type Output = $name;
            fn sub(self, sectors: u64) -> $name {
                $name(self.0 - sectors)
            }
        }

        impl Sub<$name> for $name {
            /// Unsigned sector distance; panics in debug builds if
            /// `self < rhs`. Use [`Self::distance_from`] for signed
            /// distances.
            type Output = u64;
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }
    };
}

address_newtype! {
    /// A **logical** block address: a 512-byte sector number in the address
    /// space exposed to the host.
    ///
    /// # Example
    ///
    /// ```
    /// use smrseek_trace::Lba;
    /// let a = Lba::new(100);
    /// assert_eq!(a + 8, Lba::new(108));
    /// assert_eq!((a + 8).distance_from(a), 8);
    /// ```
    Lba
}

address_newtype! {
    /// A **physical** block address: a 512-byte sector number on the
    /// medium. The log-structured layer's write frontier advances through
    /// this space.
    ///
    /// # Example
    ///
    /// ```
    /// use smrseek_trace::Pba;
    /// let frontier = Pba::new(1 << 30);
    /// assert_eq!(frontier + 16, Pba::new((1 << 30) + 16));
    /// ```
    Pba
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_byte_roundtrip() {
        assert_eq!(Lba::from_bytes(4096), Lba::new(8));
        assert_eq!(Lba::new(8).to_bytes(), 4096);
        assert_eq!(Pba::from_bytes(1023), Pba::new(1)); // round down
    }

    #[test]
    fn distance_signs() {
        let a = Lba::new(100);
        let b = Lba::new(50);
        assert_eq!(a.distance_from(b), 50);
        assert_eq!(b.distance_from(a), -50);
        assert_eq!(a.distance_from(a), 0);
    }

    #[test]
    fn distance_saturates() {
        assert_eq!(Lba::MAX.distance_from(Lba::ZERO), i64::MAX);
        assert_eq!(Lba::ZERO.distance_from(Lba::MAX), i64::MIN);
    }

    #[test]
    fn ordering_and_arithmetic() {
        let a = Pba::new(10);
        assert!(a < a + 1);
        let mut b = a;
        b += 5;
        assert_eq!(b, Pba::new(15));
        assert_eq!(b - a, 5);
        assert_eq!(b - 5, a);
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(Lba::MAX.checked_add(1), None);
        assert_eq!(Lba::new(1).checked_add(1), Some(Lba::new(2)));
    }

    #[test]
    fn display_is_sector_number() {
        assert_eq!(Lba::new(42).to_string(), "42");
        assert_eq!(format!("{:?}", Pba::new(7)), "Pba(7)");
    }

    #[test]
    fn byte_helpers() {
        assert_eq!(bytes_to_sectors_ceil(GIB), 2 * 1024 * 1024);
        assert_eq!(sectors_to_bytes(bytes_to_sectors_ceil(MIB)), MIB);
        assert_eq!(bytes_to_sectors_ceil(511), 1);
    }
}
