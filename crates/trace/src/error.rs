//! Error type for trace parsing and serialization.

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while reading or writing traces.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A line of a text trace did not parse.
    Parse {
        /// 1-based line number within the input.
        line: u64,
        /// What was wrong with the line.
        reason: String,
    },
    /// A binary trace had a bad magic number or truncated payload.
    Format(String),
}

impl Error {
    pub(crate) fn parse(line: u64, reason: impl Into<String>) -> Self {
        Error::Parse {
            line,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            Error::Format(msg) => write!(f, "invalid trace format: {msg}"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = Error::parse(3, "bad op");
        assert_eq!(e.to_string(), "parse error at line 3: bad op");
        let e = Error::Format("short header".into());
        assert!(e.to_string().contains("short header"));
        let e = Error::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn source_chains_io() {
        let e = Error::from(io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(Error::Format("y".into()).source().is_none());
    }
}
