//! Compact binary trace format for fast replay.
//!
//! Multi-million-operation traces parse slowly from CSV; the binary format
//! stores each record in 21 bytes little-endian. Two header versions are
//! in the wild:
//!
//! ```text
//! v1:  magic "SMRT1\0" (6) | count u64 (8)
//! v2:  magic "SMRT2\0" (6) | count u64 (8) | top_sector u64 (8)
//! record: timestamp_us u64 | op u8 (0=read, 1=write) | lba u64 | sectors u32
//! ```
//!
//! `top_sector` is one past the highest sector any record touches
//! (`max(lba + sectors)`, 0 for an empty trace) — exactly the
//! `frontier_hint` a streaming log-structured run needs, so a v2 file can
//! be replayed through `simulate_stream` without a pre-scan.
//!
//! Three readers, by increasing laziness:
//!
//! * [`read_binary`] — materializes the whole trace (accepts v1 and v2).
//! * [`BinaryRecordIter`] — streams `Result<TraceRecord>` from any
//!   [`Read`], never holding more than one record.
//! * [`MmapTrace`] — maps a trace file read-only via `mmap(2)` (raw
//!   syscall wrapper on unix, buffered-read fallback elsewhere) and
//!   decodes records zero-copy on iteration; the file's pages are shared
//!   by every iterator over the same mapping.
//!
//! # Example
//!
//! ```
//! use smrseek_trace::binary::{read_binary, write_binary_v2, BinaryRecordIter};
//! use smrseek_trace::{Lba, TraceRecord};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let recs = vec![TraceRecord::read(1, Lba::new(8), 16)];
//! let mut buf = Vec::new();
//! write_binary_v2(&mut buf, &recs)?;
//! assert_eq!(read_binary(&buf[..])?, recs);
//! let iter = BinaryRecordIter::new(&buf[..])?;
//! assert_eq!(iter.header().top_sector, Some(24));
//! # Ok(())
//! # }
//! ```

use crate::error::{Error, Result};
use crate::record::{OpKind, TraceRecord};
use crate::types::Lba;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC_V1: &[u8; 6] = b"SMRT1\0";
const MAGIC_V2: &[u8; 6] = b"SMRT2\0";
const RECORD_LEN: usize = 8 + 1 + 8 + 4;
const V1_HEADER_LEN: usize = 6 + 8;
const V2_HEADER_LEN: usize = 6 + 8 + 8;

/// The parsed header of a binary trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryHeader {
    /// Format version (1 or 2).
    pub version: u8,
    /// Number of records in the payload.
    pub count: u64,
    /// One past the highest sector any record touches (v2 only).
    pub top_sector: Option<u64>,
}

impl BinaryHeader {
    /// Byte offset of the first record.
    pub fn data_offset(&self) -> usize {
        match self.version {
            1 => V1_HEADER_LEN,
            _ => V2_HEADER_LEN,
        }
    }
}

/// One past the highest sector `records` touch — the value a v2 header
/// carries and the `frontier_hint` a streaming log-structured run needs.
pub fn top_sector(records: &[TraceRecord]) -> u64 {
    records.iter().map(|r| r.end().sector()).max().unwrap_or(0)
}

fn encode_record(rec: &TraceRecord, buf: &mut [u8; RECORD_LEN]) {
    buf[0..8].copy_from_slice(&rec.timestamp_us.to_le_bytes());
    buf[8] = match rec.op {
        OpKind::Read => 0,
        OpKind::Write => 1,
    };
    buf[9..17].copy_from_slice(&rec.lba.sector().to_le_bytes());
    buf[17..21].copy_from_slice(&rec.sectors.to_le_bytes());
}

fn decode_record(buf: &[u8], index: u64) -> Result<TraceRecord> {
    if buf[8] > 1 {
        return Err(Error::Format(format!(
            "bad op byte {} at record {index}",
            buf[8]
        )));
    }
    Ok(decode_record_trusted(buf))
}

/// Decodes one record from bytes whose op byte is already known valid
/// (checked by [`MmapTrace::validate`] at open, or by the caller). The
/// infallible form is what lets the batched block path decode with no
/// per-record branch on a `Result`.
fn decode_record_trusted(buf: &[u8]) -> TraceRecord {
    let timestamp_us = u64::from_le_bytes(buf[0..8].try_into().expect("fixed slice"));
    let op = if buf[8] == 0 {
        OpKind::Read
    } else {
        OpKind::Write
    };
    let lba = Lba::new(u64::from_le_bytes(
        buf[9..17].try_into().expect("fixed slice"),
    ));
    let sectors = u32::from_le_bytes(buf[17..21].try_into().expect("fixed slice"));
    TraceRecord::new(timestamp_us, op, lba, sectors)
}

/// Serializes `records` to `writer` in the v1 binary format (no
/// `top_sector`; kept for compatibility with existing files and tools).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_binary<W: Write>(mut writer: W, records: &[TraceRecord]) -> Result<()> {
    writer.write_all(MAGIC_V1)?;
    writer.write_all(&(records.len() as u64).to_le_bytes())?;
    write_records(writer, records)
}

/// Serializes `records` to `writer` in the v2 binary format, computing and
/// embedding [`top_sector`] so replay never needs a pre-scan.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_binary_v2<W: Write>(mut writer: W, records: &[TraceRecord]) -> Result<()> {
    writer.write_all(MAGIC_V2)?;
    writer.write_all(&(records.len() as u64).to_le_bytes())?;
    writer.write_all(&top_sector(records).to_le_bytes())?;
    write_records(writer, records)
}

fn write_records<W: Write>(mut writer: W, records: &[TraceRecord]) -> Result<()> {
    let mut buf = [0u8; RECORD_LEN];
    for rec in records {
        encode_record(rec, &mut buf);
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Returns the header version (1 or 2) if `prefix` begins with a binary
/// trace magic number. Six bytes suffice; shorter prefixes never match.
pub fn sniff_magic(prefix: &[u8]) -> Option<u8> {
    if prefix.starts_with(MAGIC_V1) {
        Some(1)
    } else if prefix.starts_with(MAGIC_V2) {
        Some(2)
    } else {
        None
    }
}

fn read_header<R: Read>(reader: &mut R) -> Result<BinaryHeader> {
    let mut magic = [0u8; 6];
    reader
        .read_exact(&mut magic)
        .map_err(|_| Error::Format("missing magic".into()))?;
    let version = sniff_magic(&magic).ok_or_else(|| Error::Format("bad magic number".into()))?;
    let mut word = [0u8; 8];
    reader
        .read_exact(&mut word)
        .map_err(|_| Error::Format("missing record count".into()))?;
    let count = u64::from_le_bytes(word);
    let top_sector = if version >= 2 {
        reader
            .read_exact(&mut word)
            .map_err(|_| Error::Format("missing top_sector".into()))?;
        Some(u64::from_le_bytes(word))
    } else {
        None
    };
    Ok(BinaryHeader {
        version,
        count,
        top_sector,
    })
}

/// Streams records from a binary trace without materializing it.
///
/// Yields `Result<TraceRecord>`: truncation and bad op bytes surface
/// in-stream at the record that caused them, after which the iterator
/// fuses. Accepts v1 and v2 headers; [`BinaryRecordIter::header`] exposes
/// the record count and (for v2) the `top_sector` frontier hint.
#[derive(Debug)]
pub struct BinaryRecordIter<R> {
    reader: R,
    header: BinaryHeader,
    next_index: u64,
    failed: bool,
}

impl<R: Read> BinaryRecordIter<R> {
    /// Reads the header from `reader` and prepares to stream its records.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Format`] on a missing/bad magic number or a
    /// truncated header.
    pub fn new(mut reader: R) -> Result<Self> {
        let header = read_header(&mut reader)?;
        Ok(BinaryRecordIter {
            reader,
            header,
            next_index: 0,
            failed: false,
        })
    }

    /// The trace's parsed header.
    pub fn header(&self) -> &BinaryHeader {
        &self.header
    }
}

impl<R: Read> Iterator for BinaryRecordIter<R> {
    type Item = Result<TraceRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.next_index >= self.header.count {
            return None;
        }
        let i = self.next_index;
        self.next_index += 1;
        let mut buf = [0u8; RECORD_LEN];
        if self.reader.read_exact(&mut buf).is_err() {
            self.failed = true;
            return Some(Err(Error::Format(format!("truncated at record {i}"))));
        }
        match decode_record(&buf, i) {
            Ok(rec) => Some(Ok(rec)),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.failed {
            return (0, Some(0));
        }
        let left = usize::try_from(self.header.count - self.next_index).unwrap_or(usize::MAX);
        (0, Some(left))
    }
}

/// Deserializes a binary trace from `reader`, accepting v1 and v2 headers.
///
/// # Errors
///
/// Returns [`Error::Format`] on a bad magic number, a bad op byte, or a
/// truncated payload; propagates I/O errors otherwise.
pub fn read_binary<R: Read>(reader: R) -> Result<Vec<TraceRecord>> {
    let iter = BinaryRecordIter::new(reader)?;
    let cap = usize::try_from(iter.header().count)
        .map_err(|_| Error::Format("count too large".into()))?;
    let mut out = Vec::with_capacity(cap.min(1 << 24));
    for rec in iter {
        out.push(rec?);
    }
    Ok(out)
}

#[cfg(unix)]
mod sys {
    //! Minimal `mmap(2)`/`munmap(2)` wrapper: the workspace builds with
    //! vendored stand-ins only, so the raw syscalls are declared here
    //! instead of pulling in `libc`/`memmap2`.
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

/// The bytes behind an [`MmapTrace`]: a private read-only `mmap(2)` of the
/// file on unix, an owned buffer elsewhere (and for empty files, where a
/// zero-length mapping is invalid).
enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *mut std::ffi::c_void,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) and owned
// exclusively by the Backing, so sharing the pointer across threads is
// sound; Owned is a plain Vec.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: ptr/len came from a successful mmap that lives
            // until Drop, and the mapping is never written through.
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts((*ptr).cast::<u8>(), *len)
            },
            Backing::Owned(v) => v,
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = *self {
            // SAFETY: ptr/len are exactly what mmap returned; unmapping
            // once in Drop is the matching release.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

/// A binary trace file mapped read-only, decoding records zero-copy.
///
/// Opening validates the header and every record's op byte up front (one
/// sequential pass over the mapping — pure memory traffic, no parsing), so
/// iteration is infallible and each [`TraceRecord`] decodes straight from
/// the mapped bytes. Wrap it in an [`std::sync::Arc`] to share one mapping
/// across threads; every [`MmapTrace::iter`] walks the same pages.
///
/// The mapping is `MAP_PRIVATE`: mutating the file while a trace is mapped
/// is undefined behaviour, as with any mapped file.
pub struct MmapTrace {
    backing: Backing,
    header: BinaryHeader,
}

impl std::fmt::Debug for MmapTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapTrace")
            .field("header", &self.header)
            .finish_non_exhaustive()
    }
}

impl MmapTrace {
    /// Maps the binary trace at `path` read-only.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the file cannot be opened or mapped, and
    /// [`Error::Format`] on a bad magic number, a payload shorter than the
    /// header's record count, or a bad op byte anywhere in the payload.
    pub fn open(path: &Path) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| Error::Format("file too large to map".into()))?;
        let backing = Self::map_file(&file, len)?;
        Self::validate(backing)
    }

    /// Wraps an already-loaded binary trace image (used by tests and the
    /// non-unix fallback path).
    ///
    /// # Errors
    ///
    /// Same validation as [`MmapTrace::open`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self> {
        Self::validate(Backing::Owned(bytes))
    }

    #[cfg(unix)]
    fn map_file(file: &std::fs::File, len: usize) -> Result<Backing> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Ok(Backing::Owned(Vec::new()));
        }
        // SAFETY: fd is valid for the duration of the call; a failed map
        // returns MAP_FAILED which we turn into an error.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(Error::Io(std::io::Error::last_os_error()));
        }
        Ok(Backing::Mapped { ptr, len })
    }

    #[cfg(not(unix))]
    fn map_file(file: &std::fs::File, len: usize) -> Result<Backing> {
        use std::io::Read as _;
        let mut buf = Vec::with_capacity(len);
        std::io::BufReader::new(file).read_to_end(&mut buf)?;
        Ok(Backing::Owned(buf))
    }

    fn validate(backing: Backing) -> Result<Self> {
        let bytes = backing.bytes();
        let header = read_header(&mut &bytes[..])?;
        let count =
            usize::try_from(header.count).map_err(|_| Error::Format("count too large".into()))?;
        let need = header
            .data_offset()
            .checked_add(
                count
                    .checked_mul(RECORD_LEN)
                    .ok_or_else(|| Error::Format("count too large".into()))?,
            )
            .ok_or_else(|| Error::Format("count too large".into()))?;
        if bytes.len() < need {
            return Err(Error::Format(format!(
                "truncated: {} bytes, need {need} for {count} records",
                bytes.len()
            )));
        }
        let data = &bytes[header.data_offset()..need];
        for (i, rec) in data.chunks_exact(RECORD_LEN).enumerate() {
            if rec[8] > 1 {
                return Err(Error::Format(format!(
                    "bad op byte {} at record {i}",
                    rec[8]
                )));
            }
        }
        Ok(MmapTrace { backing, header })
    }

    /// The trace's parsed header.
    pub fn header(&self) -> &BinaryHeader {
        &self.header
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        usize::try_from(self.header.count).unwrap_or(usize::MAX)
    }

    /// Whether the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.header.count == 0
    }

    /// One past the highest sector any record touches: from the v2 header
    /// when present, otherwise computed once from the mapped records (and
    /// cached by the caller if needed). This is the `frontier_hint` a
    /// streaming log-structured replay requires.
    pub fn top_sector(&self) -> u64 {
        self.header
            .top_sector
            .unwrap_or_else(|| self.iter().map(|r| r.end().sector()).max().unwrap_or(0))
    }

    /// Decodes record `index` from the mapping.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()` (op bytes were validated at open,
    /// so decoding itself cannot fail).
    pub fn get(&self, index: usize) -> TraceRecord {
        assert!(index < self.len(), "record index {index} out of bounds");
        let start = self.header.data_offset() + index * RECORD_LEN;
        decode_record_trusted(&self.backing.bytes()[start..start + RECORD_LEN])
    }

    /// Iterates the records, decoding each zero-copy from the mapping.
    pub fn iter(&self) -> MmapRecords<'_> {
        MmapRecords {
            trace: self,
            next: 0,
        }
    }

    /// Appends records `[start, end)` to `out`, decoding them in one pass
    /// over the mapped bytes. This is the batched-ingest primitive: one
    /// bounds check per *range* instead of one per record, with the inner
    /// loop a straight walk of 21-byte chunks (op bytes were validated at
    /// open, so there is no per-record error path either).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn decode_range(&self, start: usize, end: usize, out: &mut Vec<TraceRecord>) {
        assert!(start <= end, "inverted range {start}..{end}");
        assert!(end <= self.len(), "range {start}..{end} out of bounds");
        let lo = self.header.data_offset() + start * RECORD_LEN;
        let hi = self.header.data_offset() + end * RECORD_LEN;
        let bytes = &self.backing.bytes()[lo..hi];
        out.reserve(end - start);
        out.extend(bytes.chunks_exact(RECORD_LEN).map(decode_record_trusted));
    }

    /// A block reader over the whole trace with the default block size.
    pub fn blocks(&self) -> MmapBlocks<'_> {
        self.blocks_range(0, self.len(), DEFAULT_BLOCK_RECORDS)
    }

    /// A block reader over records `[start, end)` — the shard-aligned
    /// slicing primitive: each intra-trace shard reads exactly its record
    /// range through one of these, block by block, off the shared mapping.
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or out of bounds, or if
    /// `block_records` is zero.
    pub fn blocks_range(&self, start: usize, end: usize, block_records: usize) -> MmapBlocks<'_> {
        assert!(start <= end, "inverted range {start}..{end}");
        assert!(end <= self.len(), "range {start}..{end} out of bounds");
        assert!(block_records > 0, "block size must be positive");
        MmapBlocks {
            trace: self,
            next: start,
            end,
            block_records,
            buf: Vec::new(),
        }
    }
}

/// Records decoded per block by [`MmapTrace::blocks`]: 4096 records ≈
/// 84 KiB of file bytes and 96 KiB of decoded records — big enough to
/// amortize per-block dispatch, small enough to stay cache-resident.
pub const DEFAULT_BLOCK_RECORDS: usize = 4096;

/// Batched reader over a record range of an [`MmapTrace`]: each
/// [`next_block`](Self::next_block) decodes up to `block_records` records
/// into an internal buffer (reused across blocks, so the reader allocates
/// once) and lends it out.
#[derive(Debug)]
pub struct MmapBlocks<'a> {
    trace: &'a MmapTrace,
    next: usize,
    end: usize,
    block_records: usize,
    buf: Vec<TraceRecord>,
}

impl MmapBlocks<'_> {
    /// Decodes and returns the next block, or `None` when the range is
    /// exhausted. The slice borrows the reader's internal buffer, which the
    /// following call overwrites (a lending iterator, hand-rolled).
    pub fn next_block(&mut self) -> Option<&[TraceRecord]> {
        if self.next >= self.end {
            return None;
        }
        let upto = self.end.min(self.next + self.block_records);
        self.buf.clear();
        self.trace.decode_range(self.next, upto, &mut self.buf);
        self.next = upto;
        Some(&self.buf)
    }

    /// Records not yet returned.
    pub fn remaining(&self) -> usize {
        self.end - self.next
    }
}

impl<'a> IntoIterator for &'a MmapTrace {
    type Item = TraceRecord;
    type IntoIter = MmapRecords<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over an [`MmapTrace`]'s records.
#[derive(Debug, Clone)]
pub struct MmapRecords<'a> {
    trace: &'a MmapTrace,
    next: usize,
}

impl Iterator for MmapRecords<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.trace.len() {
            return None;
        }
        let rec = self.trace.get(self.next);
        self.next += 1;
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for MmapRecords<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::read(0, Lba::new(0), 1),
            TraceRecord::write(10, Lba::new(u64::MAX - 8), 8),
            TraceRecord::read(u64::MAX, Lba::new(12345), 8),
        ]
    }

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smrseek_binary_test_{}_{name}", std::process::id()));
        std::fs::write(&p, bytes).expect("write temp");
        p
    }

    #[test]
    fn roundtrip_v1() {
        let recs = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &recs).unwrap();
        assert_eq!(buf.len(), V1_HEADER_LEN + 3 * RECORD_LEN);
        assert_eq!(read_binary(&buf[..]).unwrap(), recs);
    }

    #[test]
    fn roundtrip_v2_with_top_sector() {
        let recs = sample();
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &recs).unwrap();
        assert_eq!(buf.len(), V2_HEADER_LEN + 3 * RECORD_LEN);
        assert_eq!(read_binary(&buf[..]).unwrap(), recs);
        let iter = BinaryRecordIter::new(&buf[..]).unwrap();
        assert_eq!(iter.header().version, 2);
        assert_eq!(iter.header().top_sector, Some(u64::MAX));
    }

    #[test]
    fn empty_roundtrip() {
        let mut v1 = Vec::new();
        write_binary(&mut v1, &[]).unwrap();
        assert!(read_binary(&v1[..]).unwrap().is_empty());
        let mut v2 = Vec::new();
        write_binary_v2(&mut v2, &[]).unwrap();
        assert!(read_binary(&v2[..]).unwrap().is_empty());
    }

    #[test]
    fn top_sector_matches_max_end() {
        assert_eq!(top_sector(&[]), 0);
        assert_eq!(top_sector(&sample()), u64::MAX);
        let recs = vec![TraceRecord::write(0, Lba::new(100), 8)];
        assert_eq!(top_sector(&recs), 108);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_binary(&buf[..]), Err(Error::Format(_))));
        assert!(sniff_magic(&buf).is_none());
    }

    #[test]
    fn sniffs_both_versions() {
        let mut v1 = Vec::new();
        write_binary(&mut v1, &[]).unwrap();
        assert_eq!(sniff_magic(&v1), Some(1));
        let mut v2 = Vec::new();
        write_binary_v2(&mut v2, &[]).unwrap();
        assert_eq!(sniff_magic(&v2), Some(2));
        assert_eq!(sniff_magic(b"SMR"), None, "short prefixes never match");
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[V1_HEADER_LEN + 8] = 9; // first record's op byte
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("bad op byte"));
    }

    #[test]
    fn iter_streams_and_fuses_on_error() {
        let recs = sample();
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &recs).unwrap();
        let streamed: Result<Vec<_>> = BinaryRecordIter::new(&buf[..]).unwrap().collect();
        assert_eq!(streamed.unwrap(), recs);

        buf.truncate(buf.len() - 1);
        let mut iter = BinaryRecordIter::new(&buf[..]).unwrap();
        assert!(iter.next().unwrap().is_ok());
        assert!(iter.next().unwrap().is_ok());
        assert!(iter.next().unwrap().is_err());
        assert!(iter.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn mmap_roundtrip_both_versions() {
        let recs = sample();
        let mut v1 = Vec::new();
        write_binary(&mut v1, &recs).unwrap();
        let mut v2 = Vec::new();
        write_binary_v2(&mut v2, &recs).unwrap();
        for (name, buf) in [("v1", v1), ("v2", v2)] {
            let path = tmp_file(&format!("mmap_{name}"), &buf);
            let map = MmapTrace::open(&path).unwrap();
            assert_eq!(map.len(), 3);
            assert_eq!(map.iter().collect::<Vec<_>>(), recs);
            assert_eq!(map.get(1), recs[1]);
            assert_eq!(map.top_sector(), u64::MAX);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn mmap_empty_file_and_empty_trace() {
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &[]).unwrap();
        let path = tmp_file("mmap_empty", &buf);
        let map = MmapTrace::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.top_sector(), 0);
        assert_eq!(map.iter().count(), 0);
        std::fs::remove_file(&path).ok();

        let path = tmp_file("mmap_zero_bytes", &[]);
        assert!(MmapTrace::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_rejects_truncation_and_bad_op_up_front() {
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &sample()).unwrap();
        let mut short = buf.clone();
        short.truncate(short.len() - RECORD_LEN);
        let err = MmapTrace::from_bytes(short).unwrap_err();
        assert!(err.to_string().contains("truncated"));

        let mut bad = buf;
        bad[V2_HEADER_LEN + 2 * RECORD_LEN + 8] = 7;
        let err = MmapTrace::from_bytes(bad).unwrap_err();
        assert!(err.to_string().contains("bad op byte"), "{err}");
    }

    #[test]
    fn decode_range_matches_iter() {
        let recs: Vec<TraceRecord> = (0..100)
            .map(|i| {
                if i % 3 == 0 {
                    TraceRecord::read(i, Lba::new(i * 16), 8)
                } else {
                    TraceRecord::write(i, Lba::new(i * 16), 4)
                }
            })
            .collect();
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &recs).unwrap();
        let map = MmapTrace::from_bytes(buf).unwrap();
        for (start, end) in [(0, 100), (0, 0), (37, 37), (37, 61), (99, 100)] {
            let mut out = Vec::new();
            map.decode_range(start, end, &mut out);
            assert_eq!(out, &recs[start..end], "range {start}..{end}");
        }
        // Appends without clearing.
        let mut out = vec![recs[0]];
        map.decode_range(1, 3, &mut out);
        assert_eq!(out, &recs[..3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn decode_range_checks_bounds() {
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &sample()).unwrap();
        let map = MmapTrace::from_bytes(buf).unwrap();
        map.decode_range(0, 4, &mut Vec::new());
    }

    #[test]
    fn blocks_cover_range_exactly() {
        let recs: Vec<TraceRecord> = (0..50)
            .map(|i| TraceRecord::write(i, Lba::new(i * 8), 8))
            .collect();
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &recs).unwrap();
        let map = MmapTrace::from_bytes(buf).unwrap();

        // Block size that does not divide the range: last block is short.
        let mut blocks = map.blocks_range(5, 42, 16);
        let mut seen = Vec::new();
        let mut sizes = Vec::new();
        while let Some(block) = blocks.next_block() {
            sizes.push(block.len());
            seen.extend_from_slice(block);
        }
        assert_eq!(sizes, vec![16, 16, 5]);
        assert_eq!(seen, &recs[5..42]);
        assert_eq!(blocks.remaining(), 0);

        // Whole-trace default reader.
        let mut blocks = map.blocks();
        assert_eq!(blocks.remaining(), 50);
        assert_eq!(blocks.next_block().unwrap(), &recs[..]);
        assert!(blocks.next_block().is_none());

        // Empty range yields no blocks.
        assert!(map.blocks_range(7, 7, 8).next_block().is_none());
    }

    #[test]
    fn mmap_is_shareable_across_threads() {
        let recs: Vec<TraceRecord> = (0..1000)
            .map(|i| TraceRecord::write(i, Lba::new(i * 8), 8))
            .collect();
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &recs).unwrap();
        let map = std::sync::Arc::new(MmapTrace::from_bytes(buf).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let map = std::sync::Arc::clone(&map);
                let recs = &recs;
                scope.spawn(move || {
                    assert_eq!(map.iter().count(), 1000);
                    assert_eq!(&map.iter().collect::<Vec<_>>(), recs);
                });
            }
        });
    }
}
