//! Compact binary trace format for fast replay.
//!
//! Multi-million-operation traces parse slowly from CSV; the binary format
//! stores each record in 21 bytes little-endian:
//!
//! ```text
//! magic  "SMRT1\0"           (6 bytes, once)
//! count  u64                 (8 bytes, once)
//! record: timestamp_us u64 | op u8 (0=read, 1=write) | lba u64 | sectors u32
//! ```
//!
//! # Example
//!
//! ```
//! use smrseek_trace::binary::{read_binary, write_binary};
//! use smrseek_trace::{Lba, TraceRecord};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let recs = vec![TraceRecord::read(1, Lba::new(8), 16)];
//! let mut buf = Vec::new();
//! write_binary(&mut buf, &recs)?;
//! assert_eq!(read_binary(&buf[..])?, recs);
//! # Ok(())
//! # }
//! ```

use crate::error::{Error, Result};
use crate::record::{OpKind, TraceRecord};
use crate::types::Lba;
use std::io::{Read, Write};

const MAGIC: &[u8; 6] = b"SMRT1\0";
const RECORD_LEN: usize = 8 + 1 + 8 + 4;

/// Serializes `records` to `writer` in the binary format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_binary<W: Write>(mut writer: W, records: &[TraceRecord]) -> Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&(records.len() as u64).to_le_bytes())?;
    let mut buf = [0u8; RECORD_LEN];
    for rec in records {
        buf[0..8].copy_from_slice(&rec.timestamp_us.to_le_bytes());
        buf[8] = match rec.op {
            OpKind::Read => 0,
            OpKind::Write => 1,
        };
        buf[9..17].copy_from_slice(&rec.lba.sector().to_le_bytes());
        buf[17..21].copy_from_slice(&rec.sectors.to_le_bytes());
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Deserializes a binary trace from `reader`.
///
/// # Errors
///
/// Returns [`Error::Format`] on a bad magic number, a bad op byte, or a
/// truncated payload; propagates I/O errors otherwise.
pub fn read_binary<R: Read>(mut reader: R) -> Result<Vec<TraceRecord>> {
    let mut magic = [0u8; 6];
    reader
        .read_exact(&mut magic)
        .map_err(|_| Error::Format("missing magic".into()))?;
    if &magic != MAGIC {
        return Err(Error::Format("bad magic number".into()));
    }
    let mut count_buf = [0u8; 8];
    reader
        .read_exact(&mut count_buf)
        .map_err(|_| Error::Format("missing record count".into()))?;
    let count = u64::from_le_bytes(count_buf);
    let cap = usize::try_from(count).map_err(|_| Error::Format("count too large".into()))?;
    let mut out = Vec::with_capacity(cap.min(1 << 24));
    let mut buf = [0u8; RECORD_LEN];
    for i in 0..count {
        reader
            .read_exact(&mut buf)
            .map_err(|_| Error::Format(format!("truncated at record {i}")))?;
        let timestamp_us = u64::from_le_bytes(buf[0..8].try_into().expect("fixed slice"));
        let op = match buf[8] {
            0 => OpKind::Read,
            1 => OpKind::Write,
            b => return Err(Error::Format(format!("bad op byte {b} at record {i}"))),
        };
        let lba = Lba::new(u64::from_le_bytes(buf[9..17].try_into().expect("fixed slice")));
        let sectors = u32::from_le_bytes(buf[17..21].try_into().expect("fixed slice"));
        out.push(TraceRecord::new(timestamp_us, op, lba, sectors));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::read(0, Lba::new(0), 1),
            TraceRecord::write(10, Lba::new(u64::MAX - 8), u32::MAX),
            TraceRecord::read(u64::MAX, Lba::new(12345), 8),
        ]
    }

    #[test]
    fn roundtrip() {
        let recs = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &recs).unwrap();
        assert_eq!(buf.len(), 6 + 8 + 3 * RECORD_LEN);
        assert_eq!(read_binary(&buf[..]).unwrap(), recs);
    }

    #[test]
    fn empty_roundtrip() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &[]).unwrap();
        assert!(read_binary(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_binary(&buf[..]), Err(Error::Format(_))));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample()).unwrap();
        buf[6 + 8 + 8] = 9; // first record's op byte
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("bad op byte"));
    }
}
