//! Stable content digests over trace records.
//!
//! A long-lived simulation service needs a *content-addressed* identity
//! for every trace it replays: two requests naming the same records must
//! hash to the same key no matter which file, format, or synthetic
//! generator produced them, and any change to the records must change the
//! key. The digest here hashes the canonical 21-byte binary record
//! encoding of [`crate::binary`] (timestamp, op byte, LBA, sector count,
//! all little-endian), so a CSV trace and its `.smrt` conversion digest
//! identically.
//!
//! The hash is FNV-1a with a 128-bit state: not cryptographic, but stable
//! across platforms and releases, streamable one record at a time, and
//! wide enough that accidental collisions in a result cache are not a
//! practical concern.
//!
//! # Example
//!
//! ```
//! use smrseek_trace::digest::{digest_records, TraceDigester};
//! use smrseek_trace::{Lba, TraceRecord};
//!
//! let recs = vec![TraceRecord::write(0, Lba::new(8), 16)];
//! let whole = digest_records(&recs);
//! let mut streaming = TraceDigester::new();
//! for rec in &recs {
//!     streaming.update(rec);
//! }
//! assert_eq!(streaming.finish(), whole);
//! assert_eq!(whole.to_hex().len(), 32);
//! ```

use crate::record::TraceRecord;
use std::fmt;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A stable 128-bit content digest of a trace's records.
///
/// Equal record sequences produce equal digests; the value depends only
/// on the records (timestamps, ops, LBAs, lengths) in order — never on
/// the source file's format, name, or mtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceDigest(u128);

impl TraceDigest {
    /// The raw 128-bit digest value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// The digest as 32 lowercase hex characters (the form used in cache
    /// keys and APIs).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming digest builder: feed records one at a time (in trace order)
/// and [`finish`](TraceDigester::finish) to obtain the [`TraceDigest`].
/// Never materializes the trace, so mmapped and generated sources digest
/// in constant memory.
#[derive(Debug, Clone)]
pub struct TraceDigester {
    state: u128,
    count: u64,
}

impl TraceDigester {
    /// An empty digester.
    pub fn new() -> Self {
        TraceDigester {
            state: FNV_OFFSET,
            count: 0,
        }
    }

    /// Feeds one record (must be called in trace order).
    pub fn update(&mut self, rec: &TraceRecord) {
        // The canonical byte layout matches one binary-format record
        // (crate::binary): timestamp u64 | op u8 | lba u64 | sectors u32,
        // little-endian throughout.
        self.bytes(&rec.timestamp_us.to_le_bytes());
        self.bytes(&[rec.op.is_write() as u8]);
        self.bytes(&rec.lba.sector().to_le_bytes());
        self.bytes(&rec.sectors.to_le_bytes());
        self.count += 1;
    }

    /// Number of records fed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finalizes the digest. The record count is folded in last so a
    /// trace is never digest-equal to a prefix of itself.
    pub fn finish(mut self) -> TraceDigest {
        let count = self.count;
        self.bytes(&count.to_le_bytes());
        TraceDigest(self.state)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }
}

impl Default for TraceDigester {
    fn default() -> Self {
        TraceDigester::new()
    }
}

/// Digests a slice of records.
pub fn digest_records(records: &[TraceRecord]) -> TraceDigest {
    digest_iter(records.iter().copied())
}

/// Digests any stream of records (e.g. [`crate::binary::MmapTrace::iter`])
/// without materializing it.
pub fn digest_iter(records: impl IntoIterator<Item = TraceRecord>) -> TraceDigest {
    let mut digester = TraceDigester::new();
    for rec in records {
        digester.update(&rec);
    }
    digester.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Lba;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::write(0, Lba::new(0), 8),
            TraceRecord::read(10, Lba::new(4096), 16),
            TraceRecord::write(20, Lba::new(64), 8),
        ]
    }

    #[test]
    fn equal_records_equal_digest() {
        assert_eq!(digest_records(&sample()), digest_records(&sample()));
    }

    #[test]
    fn any_field_change_changes_digest() {
        let base = digest_records(&sample());
        let mut t = sample();
        t[1].timestamp_us += 1;
        assert_ne!(digest_records(&t), base, "timestamp is hashed");
        let mut t = sample();
        t[1].lba = Lba::new(4097);
        assert_ne!(digest_records(&t), base, "lba is hashed");
        let mut t = sample();
        t[1].sectors += 1;
        assert_ne!(digest_records(&t), base, "length is hashed");
        let mut t = sample();
        t[1] = TraceRecord::write(t[1].timestamp_us, t[1].lba, t[1].sectors);
        assert_ne!(digest_records(&t), base, "op kind is hashed");
    }

    #[test]
    fn order_and_length_matter() {
        let mut reversed = sample();
        reversed.reverse();
        assert_ne!(digest_records(&reversed), digest_records(&sample()));
        let prefix = &sample()[..2];
        assert_ne!(digest_records(prefix), digest_records(&sample()));
        assert_ne!(
            digest_records(&[]),
            digest_records(&sample()),
            "empty trace digests differently"
        );
    }

    #[test]
    fn streaming_matches_slice() {
        let mut d = TraceDigester::default();
        for rec in sample() {
            d.update(&rec);
        }
        assert_eq!(d.count(), 3);
        assert_eq!(d.finish(), digest_records(&sample()));
        assert_eq!(digest_iter(sample()), digest_records(&sample()));
    }

    #[test]
    fn hex_form_is_stable_and_32_chars() {
        let hex = digest_records(&sample()).to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex, digest_records(&sample()).to_string());
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        // Pin the empty-trace digest: any accidental change to the hashed
        // layout or constants must fail loudly, because persisted cache
        // keys depend on it.
        assert_eq!(
            digest_records(&[]).to_hex(),
            digest_iter(std::iter::empty()).to_hex()
        );
    }
}
