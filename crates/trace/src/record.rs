//! The trace record model: one block I/O operation.

use crate::types::{Lba, SECTOR_SIZE};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a block operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A read of already-stored data.
    Read,
    /// A write (initial write or overwrite).
    Write,
}

impl OpKind {
    /// Returns `true` for [`OpKind::Read`].
    pub const fn is_read(self) -> bool {
        matches!(self, OpKind::Read)
    }

    /// Returns `true` for [`OpKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, OpKind::Write)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => f.write_str("Read"),
            OpKind::Write => f.write_str("Write"),
        }
    }
}

/// One block I/O operation from a trace.
///
/// Records are the unit of simulation: a trace is any
/// `IntoIterator<Item = TraceRecord>`. The record is deliberately small
/// (24 bytes) so multi-million-operation traces replay from memory.
///
/// # Example
///
/// ```
/// use smrseek_trace::{Lba, OpKind, TraceRecord};
///
/// let w = TraceRecord::new(0, OpKind::Write, Lba::new(0), 8);
/// let r = TraceRecord::new(100, OpKind::Read, Lba::new(0), 8);
/// assert!(w.overlaps(&r));
/// assert!(r.contains(Lba::new(7)));
/// assert!(!r.contains(Lba::new(8)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Submission timestamp in microseconds from an arbitrary epoch.
    pub timestamp_us: u64,
    /// Read or write.
    pub op: OpKind,
    /// First sector of the operation.
    pub lba: Lba,
    /// Length in sectors. Well-formed traces have `sectors > 0`.
    pub sectors: u32,
}

impl TraceRecord {
    /// Creates a record.
    pub const fn new(timestamp_us: u64, op: OpKind, lba: Lba, sectors: u32) -> Self {
        TraceRecord {
            timestamp_us,
            op,
            lba,
            sectors,
        }
    }

    /// Creates a read record.
    pub const fn read(timestamp_us: u64, lba: Lba, sectors: u32) -> Self {
        Self::new(timestamp_us, OpKind::Read, lba, sectors)
    }

    /// Creates a write record.
    pub const fn write(timestamp_us: u64, lba: Lba, sectors: u32) -> Self {
        Self::new(timestamp_us, OpKind::Write, lba, sectors)
    }

    /// First sector *after* the operation (`lba + sectors`).
    pub fn end(&self) -> Lba {
        self.lba + u64::from(self.sectors)
    }

    /// Length in bytes.
    pub fn len_bytes(&self) -> u64 {
        u64::from(self.sectors) * SECTOR_SIZE
    }

    /// Returns `true` if `lba` lies within `[self.lba, self.end())`.
    pub fn contains(&self, lba: Lba) -> bool {
        lba >= self.lba && lba < self.end()
    }

    /// Returns `true` if the sector ranges of the two records intersect.
    pub fn overlaps(&self, other: &TraceRecord) -> bool {
        self.lba < other.end() && other.lba < self.end()
    }

    /// Returns `true` if `other` begins at exactly the sector following
    /// this record — i.e. the pair is seek-free under the paper's seek
    /// definition (Section II).
    pub fn is_followed_contiguously_by(&self, other: &TraceRecord) -> bool {
        other.lba == self.end()
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @{}us lba={} +{}",
            self.op, self.timestamp_us, self.lba, self.sectors
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_and_len() {
        let r = TraceRecord::read(5, Lba::new(10), 4);
        assert_eq!(r.end(), Lba::new(14));
        assert_eq!(r.len_bytes(), 2048);
    }

    #[test]
    fn containment() {
        let r = TraceRecord::write(0, Lba::new(10), 4);
        assert!(!r.contains(Lba::new(9)));
        assert!(r.contains(Lba::new(10)));
        assert!(r.contains(Lba::new(13)));
        assert!(!r.contains(Lba::new(14)));
    }

    #[test]
    fn overlap_is_symmetric_and_exclusive_of_touching() {
        let a = TraceRecord::read(0, Lba::new(0), 8);
        let b = TraceRecord::read(0, Lba::new(8), 8); // touches, no overlap
        let c = TraceRecord::read(0, Lba::new(7), 2);
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn contiguity_matches_seek_rule() {
        let a = TraceRecord::write(0, Lba::new(100), 8);
        let b = TraceRecord::write(1, Lba::new(108), 8);
        let c = TraceRecord::write(2, Lba::new(109), 8);
        assert!(a.is_followed_contiguously_by(&b));
        assert!(!a.is_followed_contiguously_by(&c));
        assert!(!b.is_followed_contiguously_by(&a));
    }

    #[test]
    fn op_kind_predicates() {
        assert!(OpKind::Read.is_read());
        assert!(!OpKind::Read.is_write());
        assert!(OpKind::Write.is_write());
        assert_eq!(OpKind::Write.to_string(), "Write");
    }

    #[test]
    fn record_is_small() {
        assert!(std::mem::size_of::<TraceRecord>() <= 24);
    }
}
