//! Workload characterization: the columns of Table I in the paper.
//!
//! For each workload the paper reports read/write operation counts,
//! read/written volumes in GB, and mean write size in KB. [`characterize`]
//! computes those plus a few extras used elsewhere in the evaluation
//! (sequentiality, footprint, max LBA).

use crate::record::{OpKind, TraceRecord};
use crate::types::{Lba, GIB, KIB};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Characteristics of one workload trace (Table I row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TraceStats {
    /// Number of read operations.
    pub read_count: u64,
    /// Number of write operations.
    pub write_count: u64,
    /// Total bytes read.
    pub read_bytes: u64,
    /// Total bytes written.
    pub written_bytes: u64,
    /// Highest sector touched, `None` for an empty trace.
    pub max_lba: Option<Lba>,
    /// Number of distinct sectors touched (the workload footprint).
    pub footprint_sectors: u64,
    /// Operations (read or write) whose start sector immediately follows
    /// the previous operation's end — "no seek" pairs in the original,
    /// untranslated ordering.
    pub contiguous_ops: u64,
}

impl TraceStats {
    /// Total operation count.
    pub fn total_ops(&self) -> u64 {
        self.read_count + self.write_count
    }

    /// Volume read, in GB (decimal GiB as the paper's table, i.e. 2^30).
    pub fn read_volume_gb(&self) -> f64 {
        self.read_bytes as f64 / GIB as f64
    }

    /// Volume written, in GB.
    pub fn written_volume_gb(&self) -> f64 {
        self.written_bytes as f64 / GIB as f64
    }

    /// Mean write size in KB, 0 for traces without writes.
    pub fn mean_write_size_kb(&self) -> f64 {
        if self.write_count == 0 {
            0.0
        } else {
            self.written_bytes as f64 / self.write_count as f64 / KIB as f64
        }
    }

    /// Mean read size in KB, 0 for traces without reads.
    pub fn mean_read_size_kb(&self) -> f64 {
        if self.read_count == 0 {
            0.0
        } else {
            self.read_bytes as f64 / self.read_count as f64 / KIB as f64
        }
    }

    /// Fraction of operations that are writes, in `[0, 1]`.
    pub fn write_ratio(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            0.0
        } else {
            self.write_count as f64 / total as f64
        }
    }

    /// Fraction of operations starting exactly where the previous ended.
    pub fn sequentiality(&self) -> f64 {
        let total = self.total_ops();
        if total == 0 {
            0.0
        } else {
            self.contiguous_ops as f64 / total as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads / {} writes, {:.2} GB read / {:.2} GB written, mean write {:.1} KB",
            self.read_count,
            self.write_count,
            self.read_volume_gb(),
            self.written_volume_gb(),
            self.mean_write_size_kb()
        )
    }
}

/// Computes [`TraceStats`] over a record sequence.
///
/// # Example
///
/// ```
/// use smrseek_trace::{characterize, Lba, TraceRecord};
///
/// let trace = vec![
///     TraceRecord::write(0, Lba::new(0), 2048),      // 1 MiB
///     TraceRecord::read(1, Lba::new(0), 2048),
///     TraceRecord::read(2, Lba::new(2048), 2048),    // contiguous with prev
/// ];
/// let stats = characterize(&trace);
/// assert_eq!(stats.read_count, 2);
/// assert_eq!(stats.write_count, 1);
/// assert_eq!(stats.contiguous_ops, 1);
/// assert_eq!(stats.footprint_sectors, 4096);
/// ```
pub fn characterize(records: &[TraceRecord]) -> TraceStats {
    let mut stats = TraceStats::default();
    // Footprint via coalesced interval set keyed by start sector.
    let mut intervals: BTreeMap<u64, u64> = BTreeMap::new(); // start -> end (exclusive)
    let mut prev_end: Option<Lba> = None;

    for rec in records {
        match rec.op {
            OpKind::Read => {
                stats.read_count += 1;
                stats.read_bytes += rec.len_bytes();
            }
            OpKind::Write => {
                stats.write_count += 1;
                stats.written_bytes += rec.len_bytes();
            }
        }
        let last = if rec.sectors == 0 {
            rec.lba
        } else {
            rec.end() - 1
        };
        stats.max_lba = Some(stats.max_lba.map_or(last, |m| m.max(last)));
        if prev_end == Some(rec.lba) {
            stats.contiguous_ops += 1;
        }
        prev_end = Some(rec.end());
        insert_interval(&mut intervals, rec.lba.sector(), rec.end().sector());
    }
    stats.footprint_sectors = intervals.iter().map(|(s, e)| e - s).sum();
    stats
}

/// Inserts `[start, end)` into the coalesced interval set.
fn insert_interval(intervals: &mut BTreeMap<u64, u64>, mut start: u64, mut end: u64) {
    if start >= end {
        return;
    }
    // Merge with a predecessor that overlaps or touches.
    if let Some((&ps, &pe)) = intervals.range(..=start).next_back() {
        if pe >= start {
            start = ps;
            end = end.max(pe);
            intervals.remove(&ps);
        }
    }
    // Merge all successors that overlap or touch.
    let successors: Vec<u64> = intervals.range(start..=end).map(|(&s, _)| s).collect();
    for s in successors {
        let e = intervals.remove(&s).expect("key just observed");
        end = end.max(e);
    }
    intervals.insert(start, end);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace() {
        let stats = characterize(&[]);
        assert_eq!(stats.total_ops(), 0);
        assert_eq!(stats.max_lba, None);
        assert_eq!(stats.write_ratio(), 0.0);
        assert_eq!(stats.mean_write_size_kb(), 0.0);
        assert_eq!(stats.sequentiality(), 0.0);
    }

    #[test]
    fn counts_and_volumes() {
        let trace = vec![
            TraceRecord::write(0, Lba::new(0), 8),    // 4 KiB
            TraceRecord::write(1, Lba::new(100), 24), // 12 KiB
            TraceRecord::read(2, Lba::new(0), 8),
        ];
        let stats = characterize(&trace);
        assert_eq!(stats.write_count, 2);
        assert_eq!(stats.read_count, 1);
        assert_eq!(stats.written_bytes, 16 * KIB);
        assert_eq!(stats.read_bytes, 4 * KIB);
        assert!((stats.mean_write_size_kb() - 8.0).abs() < 1e-9);
        assert!((stats.mean_read_size_kb() - 4.0).abs() < 1e-9);
        assert!((stats.write_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(stats.max_lba, Some(Lba::new(123)));
    }

    #[test]
    fn footprint_coalesces_overlaps() {
        let trace = vec![
            TraceRecord::write(0, Lba::new(0), 10),
            TraceRecord::write(1, Lba::new(5), 10), // overlaps -> [0,15)
            TraceRecord::write(2, Lba::new(15), 5), // touches  -> [0,20)
            TraceRecord::write(3, Lba::new(100), 1), // separate
            TraceRecord::read(4, Lba::new(3), 2),   // inside
        ];
        let stats = characterize(&trace);
        assert_eq!(stats.footprint_sectors, 21);
    }

    #[test]
    fn footprint_merges_bridging_interval() {
        let trace = vec![
            TraceRecord::write(0, Lba::new(0), 5),
            TraceRecord::write(1, Lba::new(10), 5),
            TraceRecord::write(2, Lba::new(4), 7), // bridges both
        ];
        let stats = characterize(&trace);
        assert_eq!(stats.footprint_sectors, 15);
    }

    #[test]
    fn contiguity_counting() {
        let trace = vec![
            TraceRecord::write(0, Lba::new(0), 8),
            TraceRecord::write(1, Lba::new(8), 8), // contiguous
            TraceRecord::read(2, Lba::new(16), 8), // contiguous (op kind irrelevant)
            TraceRecord::read(3, Lba::new(16), 8), // not contiguous (same start)
        ];
        let stats = characterize(&trace);
        assert_eq!(stats.contiguous_ops, 2);
        assert!((stats.sequentiality() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_counts() {
        let stats = characterize(&[TraceRecord::write(0, Lba::new(0), 2)]);
        let s = stats.to_string();
        assert!(s.contains("0 reads / 1 writes"));
    }
}
