//! Stream adaptors over trace record sequences.
//!
//! The paper samples, merges and windows its traces before analysis
//! (Section III); these helpers provide those operations deterministically.

use crate::record::{OpKind, TraceRecord};
use crate::types::Lba;

/// Stable-sorts records by timestamp (ties keep input order, which matters
/// for bursts dispatched "almost simultaneously", §IV-B).
pub fn sort_by_time(records: &mut [TraceRecord]) {
    records.sort_by_key(|r| r.timestamp_us);
}

/// Merges several already time-sorted traces into one time-sorted trace.
///
/// Ties across inputs resolve in favour of the earlier input, mimicking
/// multiple sequential write streams interleaving "on their way to the
/// disk" (§IV-B).
///
/// # Example
///
/// ```
/// use smrseek_trace::stream::merge_sorted;
/// use smrseek_trace::{Lba, TraceRecord};
///
/// let a = vec![TraceRecord::write(0, Lba::new(0), 8)];
/// let b = vec![TraceRecord::write(0, Lba::new(100), 8)];
/// let merged = merge_sorted(vec![a, b]);
/// assert_eq!(merged[0].lba, Lba::new(0));
/// assert_eq!(merged.len(), 2);
/// ```
pub fn merge_sorted(traces: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    let total: usize = traces.iter().map(Vec::len).sum();
    let mut cursors: Vec<(usize, std::vec::IntoIter<TraceRecord>)> = traces
        .into_iter()
        .enumerate()
        .map(|(i, t)| (i, t.into_iter()))
        .collect();
    let mut heads: Vec<Option<TraceRecord>> = cursors.iter_mut().map(|(_, it)| it.next()).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            if let Some(rec) = head {
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        let cur = heads[b].as_ref().expect("best head is Some");
                        if rec.timestamp_us < cur.timestamp_us {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        match best {
            None => break,
            Some(i) => {
                out.push(heads[i].take().expect("chosen head is Some"));
                heads[i] = cursors[i].1.next();
            }
        }
    }
    out
}

/// Keeps every `n`-th record starting with the first (`n == 1` keeps all).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sample_every(records: &[TraceRecord], n: usize) -> Vec<TraceRecord> {
    assert!(n > 0, "sample interval must be positive");
    records.iter().copied().step_by(n).collect()
}

/// Returns the records whose timestamp lies in `[start_us, end_us)`.
pub fn time_window(records: &[TraceRecord], start_us: u64, end_us: u64) -> Vec<TraceRecord> {
    records
        .iter()
        .filter(|r| r.timestamp_us >= start_us && r.timestamp_us < end_us)
        .copied()
        .collect()
}

/// Returns only the records of the given kind.
pub fn filter_kind(records: &[TraceRecord], kind: OpKind) -> Vec<TraceRecord> {
    records.iter().filter(|r| r.op == kind).copied().collect()
}

/// Highest LBA touched by any record, or `None` for an empty trace.
///
/// The log-structured disk model places its write frontier just above this
/// address (§III: "we assume this data is stored at a physical location
/// corresponding to its LBA, and start the write frontier above the highest
/// LBA found in the trace").
pub fn max_lba(records: &[TraceRecord]) -> Option<Lba> {
    records.iter().map(|r| r.end()).max().map(|end| {
        // `end` is one past the last touched sector.
        if end.sector() == 0 {
            Lba::ZERO
        } else {
            end - 1
        }
    })
}

/// Splits a trace into consecutive chunks of `ops_per_bucket` operations,
/// used by the paper's per-operation-window time series (Fig 3).
pub fn op_buckets(records: &[TraceRecord], ops_per_bucket: usize) -> Vec<&[TraceRecord]> {
    assert!(ops_per_bucket > 0, "bucket size must be positive");
    records.chunks(ops_per_bucket).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64, lba: u64) -> TraceRecord {
        TraceRecord::read(t, Lba::new(lba), 1)
    }

    #[test]
    fn sort_is_stable() {
        let mut v = vec![rec(5, 1), rec(1, 2), rec(5, 3)];
        sort_by_time(&mut v);
        assert_eq!(v[0].lba, Lba::new(2));
        assert_eq!(v[1].lba, Lba::new(1));
        assert_eq!(v[2].lba, Lba::new(3)); // tie kept input order
    }

    #[test]
    fn merge_interleaves_and_prefers_earlier_input_on_tie() {
        let a = vec![rec(0, 1), rec(10, 2)];
        let b = vec![rec(0, 3), rec(5, 4)];
        let m = merge_sorted(vec![a, b]);
        let lbas: Vec<u64> = m.iter().map(|r| r.lba.sector()).collect();
        assert_eq!(lbas, vec![1, 3, 4, 2]);
    }

    #[test]
    fn merge_handles_empty_inputs() {
        assert!(merge_sorted(vec![]).is_empty());
        assert_eq!(merge_sorted(vec![vec![], vec![rec(1, 9)]]).len(), 1);
    }

    #[test]
    fn sampling() {
        let v: Vec<_> = (0..10).map(|i| rec(i, i)).collect();
        let s = sample_every(&v, 3);
        let lbas: Vec<u64> = s.iter().map(|r| r.lba.sector()).collect();
        assert_eq!(lbas, vec![0, 3, 6, 9]);
        assert_eq!(sample_every(&v, 1).len(), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sampling_zero_panics() {
        sample_every(&[], 0);
    }

    #[test]
    fn windows_and_filters() {
        let v = vec![rec(0, 1), rec(5, 2), rec(9, 3)];
        assert_eq!(time_window(&v, 1, 9).len(), 1);
        assert_eq!(time_window(&v, 0, 10).len(), 3);
        let w = vec![TraceRecord::write(0, Lba::new(0), 1), rec(1, 1)];
        assert_eq!(filter_kind(&w, OpKind::Write).len(), 1);
        assert_eq!(filter_kind(&w, OpKind::Read).len(), 1);
    }

    #[test]
    fn max_lba_accounts_for_length() {
        let v = vec![
            TraceRecord::write(0, Lba::new(10), 8),
            TraceRecord::read(1, Lba::new(100), 4),
        ];
        assert_eq!(max_lba(&v), Some(Lba::new(103)));
        assert_eq!(max_lba(&[]), None);
    }

    #[test]
    fn buckets_cover_all_records() {
        let v: Vec<_> = (0..10).map(|i| rec(i, i)).collect();
        let b = op_buckets(&v, 4);
        assert_eq!(b.len(), 3);
        assert_eq!(b[2].len(), 2);
        assert_eq!(b.iter().map(|c| c.len()).sum::<usize>(), 10);
    }
}
