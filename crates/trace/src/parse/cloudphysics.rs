//! Parser for CloudPhysics-style CSV traces.
//!
//! The CloudPhysics traces used by the paper (Waldspurger et al.,
//! FAST '15) are proprietary; this module defines the compact CSV schema
//! that our synthetic stand-in workloads serialize to, and parses it back:
//!
//! ```text
//! timestamp_us,op,offset_bytes,length_bytes
//! ```
//!
//! `op` is `R`/`W` (also accepts `Read`/`Write`, case-insensitive). Lines
//! starting with `#` are comments. A leading header line equal to the schema
//! above is also tolerated.

use super::LineParser;
use crate::error::{Error, Result};
use crate::record::{OpKind, TraceRecord};
use crate::types::{bytes_to_sectors_ceil, Lba, SECTOR_SIZE};

/// Parser for the CloudPhysics-style CSV schema.
///
/// # Example
///
/// ```
/// use smrseek_trace::parse::{parse_reader, CpParser};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "timestamp_us,op,offset_bytes,length_bytes\n10,R,0,4096\n20,W,4096,8192\n";
/// let recs = parse_reader(text.as_bytes(), CpParser::new())?;
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[1].sectors, 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CpParser {
    _priv: (),
}

impl CpParser {
    /// Creates a parser.
    pub fn new() -> Self {
        CpParser::default()
    }
}

impl LineParser for CpParser {
    fn parse_line(&mut self, line: &str, line_no: u64) -> Result<Option<TraceRecord>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("timestamp_us") {
            return Ok(None);
        }
        let mut fields = line.split(',');
        let ts: u64 = field(&mut fields, line_no, "timestamp_us")?
            .parse()
            .map_err(|_| Error::parse(line_no, "timestamp_us is not an integer"))?;
        let op = match field(&mut fields, line_no, "op")? {
            "R" | "r" => OpKind::Read,
            "W" | "w" => OpKind::Write,
            t if t.eq_ignore_ascii_case("read") => OpKind::Read,
            t if t.eq_ignore_ascii_case("write") => OpKind::Write,
            other => {
                return Err(Error::parse(line_no, format!("bad op {other:?}")));
            }
        };
        let offset: u64 = field(&mut fields, line_no, "offset_bytes")?
            .parse()
            .map_err(|_| Error::parse(line_no, "offset_bytes is not an integer"))?;
        let length: u64 = field(&mut fields, line_no, "length_bytes")?
            .parse()
            .map_err(|_| Error::parse(line_no, "length_bytes is not an integer"))?;
        if length == 0 {
            return Ok(None);
        }
        let lba = Lba::from_bytes(offset);
        let sectors = u32::try_from(bytes_to_sectors_ceil(offset % SECTOR_SIZE + length).max(1))
            .map_err(|_| Error::parse(line_no, "length too large"))?;
        Ok(Some(TraceRecord::new(ts, op, lba, sectors)))
    }
}

fn field<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    line_no: u64,
    name: &str,
) -> Result<&'a str> {
    fields
        .next()
        .map(str::trim)
        .ok_or_else(|| Error::parse(line_no, format!("missing field {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_reader;

    #[test]
    fn parses_short_and_long_ops() {
        let text = "1,R,0,512\n2,Write,512,1024\n3,w,1536,512\n";
        let recs = parse_reader(text.as_bytes(), CpParser::new()).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].op, OpKind::Read);
        assert_eq!(recs[1].op, OpKind::Write);
        assert_eq!(recs[1].lba, Lba::new(1));
        assert_eq!(recs[1].sectors, 2);
    }

    #[test]
    fn skips_header_comment_blank_zero() {
        let text = "timestamp_us,op,offset_bytes,length_bytes\n# c\n\n5,R,0,0\n6,R,0,512\n";
        let recs = parse_reader(text.as_bytes(), CpParser::new()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].timestamp_us, 6);
    }

    #[test]
    fn whitespace_tolerant_fields() {
        let mut p = CpParser::new();
        let rec = p.parse_line("7, W , 1024 , 512", 1).unwrap().unwrap();
        assert_eq!(rec.op, OpKind::Write);
        assert_eq!(rec.lba, Lba::new(2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut p = CpParser::new();
        let err = p.parse_line("9,X,0,512", 12).unwrap_err();
        assert!(err.to_string().contains("line 12"));
        assert!(p.parse_line("9,R,zzz,512", 1).is_err());
        assert!(p.parse_line("9,R,0", 1).is_err());
    }
}
