//! Parsers for on-disk trace formats.
//!
//! Two text formats are supported, matching the two trace families used in
//! the paper's evaluation:
//!
//! * [`msr`] — the SNIA MSR Cambridge CSV format (production Windows
//!   servers, 2007–2008), so the original public traces can be replayed
//!   unmodified.
//! * [`cloudphysics`] — a compact CSV schema for CloudPhysics-style traces
//!   (the originals are proprietary; this is the schema our synthetic
//!   stand-ins serialize to).
//!
//! * [`blktrace`] — Linux `blkparse` text output, so locally-captured
//!   traces feed the simulator directly.
//!
//! Binary replay format lives in [`crate::binary`].

pub mod blktrace;
pub mod cloudphysics;
pub mod msr;

pub use blktrace::BlktraceParser;
pub use cloudphysics::CpParser;
pub use msr::MsrParser;

use crate::error::{Error, Result};
use crate::record::TraceRecord;
use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// A line-oriented trace parser.
///
/// Implementations turn one text line into zero or one [`TraceRecord`];
/// blank lines and comment lines yield `None`.
pub trait LineParser {
    /// Parses one line. `line_no` is 1-based, used only for error messages.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Parse`] when the line is malformed.
    fn parse_line(&mut self, line: &str, line_no: u64) -> Result<Option<TraceRecord>>;
}

/// A streaming trace source: yields one parsed [`TraceRecord`] at a time
/// without ever materializing the trace, so arbitrarily large files replay
/// in bounded memory. Created by [`parse_iter`].
///
/// Each item is a `Result`: I/O errors from the reader and parse errors
/// from the parser surface in-stream at the line that caused them.
#[derive(Debug)]
pub struct RecordIter<R, P> {
    reader: R,
    parser: P,
    line: String,
    line_no: u64,
}

impl<R: BufRead, P: LineParser> Iterator for RecordIter<R, P> {
    type Item = Result<TraceRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(e.into())),
            }
            self.line_no += 1;
            let trimmed = self.line.trim_end_matches(['\n', '\r']);
            match self.parser.parse_line(trimmed, self.line_no) {
                Ok(Some(rec)) => return Some(Ok(rec)),
                Ok(None) => continue, // blank/comment line
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Streams a trace from `reader` using `parser`, one record at a time.
///
/// This is the bounded-memory counterpart of [`parse_reader`]: the returned
/// iterator reuses a single line buffer and yields records as they parse.
///
/// # Example
///
/// ```
/// use smrseek_trace::parse::{parse_iter, CpParser};
///
/// let text = "100,R,4096,8192\n\n200,W,0,512\n";
/// let mut count = 0;
/// for rec in parse_iter(text.as_bytes(), CpParser::new()) {
///     rec.expect("well-formed line");
///     count += 1;
/// }
/// assert_eq!(count, 2);
/// ```
pub fn parse_iter<R: BufRead, P: LineParser>(reader: R, parser: P) -> RecordIter<R, P> {
    RecordIter {
        reader,
        parser,
        line: String::new(),
        line_no: 0,
    }
}

/// Reads an entire trace from `reader` using `parser`.
///
/// # Errors
///
/// Propagates I/O errors from the reader and parse errors from the parser.
///
/// # Example
///
/// ```
/// use smrseek_trace::parse::{parse_reader, CpParser};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "100,R,4096,8192\n200,W,0,512\n";
/// let recs = parse_reader(text.as_bytes(), CpParser::new())?;
/// assert_eq!(recs.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_reader<R: BufRead, P: LineParser>(reader: R, parser: P) -> Result<Vec<TraceRecord>> {
    parse_iter(reader, parser).collect()
}

/// A trace format identified by [`sniff_path`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectedFormat {
    /// SNIA MSR Cambridge CSV (7 comma-separated fields).
    Msr,
    /// CloudPhysics-style CSV (4 comma-separated fields).
    Cloudphysics,
    /// Linux `blkparse` text output.
    Blktrace,
    /// The compact binary format of [`crate::binary`] (v1 or v2).
    Binary,
}

/// Sniffs the on-disk format of the trace at `path`.
///
/// Binary traces carry the `SMRT` magic in their first bytes and are
/// checked first, so a binary file is never mistaken for CSV. Text
/// formats are told apart by their first data line: blkparse lines are
/// whitespace-separated with a `+` before the sector count, MSR lines
/// have at least 7 comma-separated fields, CloudPhysics lines fewer.
///
/// # Errors
///
/// Returns [`Error::Io`] if the file cannot be opened or read, and
/// [`Error::Parse`] if it contains no data lines to sniff from.
pub fn sniff_path(path: &Path) -> Result<DetectedFormat> {
    let mut file = File::open(path)?;
    let mut prefix = [0u8; 6];
    let mut filled = 0;
    while filled < prefix.len() {
        match file.read(&mut prefix[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) => return Err(e.into()),
        }
    }
    if crate::binary::sniff_magic(&prefix[..filled]).is_some() {
        return Ok(DetectedFormat::Binary);
    }
    let file = File::open(path)?;
    for line in BufReader::new(file).lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with("timestamp_us") {
            continue;
        }
        if t.split_whitespace().any(|f| f == "+") {
            return Ok(DetectedFormat::Blktrace);
        }
        return Ok(if t.split(',').count() >= 7 {
            DetectedFormat::Msr
        } else {
            DetectedFormat::Cloudphysics
        });
    }
    Err(Error::Format(
        "no data lines to sniff the format from".to_owned(),
    ))
}

/// Reads the whole trace at `path` in the given (usually sniffed) format,
/// materializing it. Binary traces go through [`crate::binary::read_binary`];
/// callers wanting zero-copy replay of binary files should use
/// [`crate::binary::MmapTrace`] instead.
///
/// # Errors
///
/// Propagates I/O errors and parse/format errors from the underlying
/// reader.
pub fn parse_path(path: &Path, format: DetectedFormat) -> Result<Vec<TraceRecord>> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    match format {
        DetectedFormat::Msr => parse_reader(reader, MsrParser::new()),
        DetectedFormat::Cloudphysics => parse_reader(reader, CpParser::new()),
        DetectedFormat::Blktrace => parse_reader(reader, BlktraceParser::new()),
        DetectedFormat::Binary => crate::binary::read_binary(reader),
    }
}
