//! Parsers for on-disk trace formats.
//!
//! Two text formats are supported, matching the two trace families used in
//! the paper's evaluation:
//!
//! * [`msr`] — the SNIA MSR Cambridge CSV format (production Windows
//!   servers, 2007–2008), so the original public traces can be replayed
//!   unmodified.
//! * [`cloudphysics`] — a compact CSV schema for CloudPhysics-style traces
//!   (the originals are proprietary; this is the schema our synthetic
//!   stand-ins serialize to).
//!
//! * [`blktrace`] — Linux `blkparse` text output, so locally-captured
//!   traces feed the simulator directly.
//!
//! Binary replay format lives in [`crate::binary`].

pub mod blktrace;
pub mod cloudphysics;
pub mod msr;

pub use blktrace::BlktraceParser;
pub use cloudphysics::CpParser;
pub use msr::MsrParser;

use crate::error::Result;
use crate::record::TraceRecord;
use std::io::BufRead;

/// A line-oriented trace parser.
///
/// Implementations turn one text line into zero or one [`TraceRecord`];
/// blank lines and comment lines yield `None`.
pub trait LineParser {
    /// Parses one line. `line_no` is 1-based, used only for error messages.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Parse`] when the line is malformed.
    fn parse_line(&mut self, line: &str, line_no: u64) -> Result<Option<TraceRecord>>;
}

/// Reads an entire trace from `reader` using `parser`.
///
/// # Errors
///
/// Propagates I/O errors from the reader and parse errors from the parser.
///
/// # Example
///
/// ```
/// use smrseek_trace::parse::{parse_reader, CpParser};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "100,R,4096,8192\n200,W,0,512\n";
/// let recs = parse_reader(text.as_bytes(), CpParser::new())?;
/// assert_eq!(recs.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_reader<R: BufRead, P: LineParser>(
    reader: R,
    mut parser: P,
) -> Result<Vec<TraceRecord>> {
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some(rec) = parser.parse_line(&line, idx as u64 + 1)? {
            out.push(rec);
        }
    }
    Ok(out)
}
