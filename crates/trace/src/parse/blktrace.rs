//! Parser for `blkparse` default text output (Linux blktrace).
//!
//! Lets Linux-origin traces feed the simulator directly. A typical line:
//!
//! ```text
//!   8,0    1      203     0.032743011  1739  Q   R 5316367 + 8 [fio]
//! ```
//!
//! Fields: `dev cpu seq timestamp pid action rwbs sector + count [proc]`.
//! Only one action type is kept (default `Q`, queue events) so each
//! logical request is counted once; RWBS strings containing `R` map to
//! reads, `W` to writes, others (e.g. pure flush/discard) are skipped.

use super::LineParser;
use crate::error::{Error, Result};
use crate::record::{OpKind, TraceRecord};
use crate::types::Lba;

/// Parser for blkparse text output.
///
/// # Example
///
/// ```
/// use smrseek_trace::parse::{parse_reader, BlktraceParser};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "\
///   8,0    1        1     0.000000000  1234  Q   W 2048 + 16 [writer]\n\
///   8,0    1        2     0.001000000  1234  C   W 2048 + 16 [writer]\n\
///   8,0    0        3     0.002500000  1234  Q  RA 4096 + 8 [reader]\n";
/// let recs = parse_reader(text.as_bytes(), BlktraceParser::new())?;
/// assert_eq!(recs.len(), 2); // completion event ignored
/// assert_eq!(recs[1].timestamp_us, 2500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlktraceParser {
    action: char,
}

impl BlktraceParser {
    /// Keeps queue (`Q`) events.
    pub fn new() -> Self {
        BlktraceParser { action: 'Q' }
    }

    /// Keeps a different action type (e.g. `'C'` for completions, `'D'`
    /// for dispatches).
    pub fn with_action(action: char) -> Self {
        BlktraceParser { action }
    }
}

impl Default for BlktraceParser {
    fn default() -> Self {
        BlktraceParser::new()
    }
}

impl LineParser for BlktraceParser {
    fn parse_line(&mut self, line: &str, line_no: u64) -> Result<Option<TraceRecord>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("CPU") {
            return Ok(None); // blank, comment, or blkparse summary section
        }
        let mut fields = line.split_whitespace();
        let _dev = req(&mut fields, line_no, "device")?;
        let _cpu = req(&mut fields, line_no, "cpu")?;
        let _seq = req(&mut fields, line_no, "sequence")?;
        let ts = req(&mut fields, line_no, "timestamp")?;
        let _pid = req(&mut fields, line_no, "pid")?;
        let action = req(&mut fields, line_no, "action")?;
        let rwbs = req(&mut fields, line_no, "rwbs")?;

        // Non-matching actions (C, D, I, M, ...) are simply skipped —
        // they describe the same request at a different lifecycle stage.
        if !(action.len() == 1 && action.starts_with(self.action)) {
            return Ok(None);
        }
        let op = if rwbs.contains('R') {
            OpKind::Read
        } else if rwbs.contains('W') {
            OpKind::Write
        } else {
            return Ok(None); // flush/discard/etc.
        };
        let sector: u64 = req(&mut fields, line_no, "sector")?
            .parse()
            .map_err(|_| Error::parse(line_no, "sector is not an integer"))?;
        let plus = req(&mut fields, line_no, "'+'")?;
        if plus != "+" {
            return Err(Error::parse(
                line_no,
                "expected '+' between sector and count",
            ));
        }
        let count: u32 = req(&mut fields, line_no, "count")?
            .parse()
            .map_err(|_| Error::parse(line_no, "count is not an integer"))?;
        if count == 0 {
            return Ok(None);
        }

        // Timestamp is seconds.nanoseconds.
        let timestamp_us =
            parse_seconds_to_us(ts).ok_or_else(|| Error::parse(line_no, "malformed timestamp"))?;
        Ok(Some(TraceRecord::new(
            timestamp_us,
            op,
            Lba::new(sector),
            count,
        )))
    }
}

fn req<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    line_no: u64,
    name: &str,
) -> Result<&'a str> {
    fields
        .next()
        .ok_or_else(|| Error::parse(line_no, format!("missing field {name}")))
}

fn parse_seconds_to_us(ts: &str) -> Option<u64> {
    let (secs, frac) = ts.split_once('.').unwrap_or((ts, "0"));
    let secs: u64 = secs.parse().ok()?;
    // Normalize the fraction to exactly 9 digits (nanoseconds).
    let mut nanos = String::from(frac);
    if nanos.len() > 9 || !nanos.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    while nanos.len() < 9 {
        nanos.push('0');
    }
    let nanos: u64 = nanos.parse().ok()?;
    Some(secs * 1_000_000 + nanos / 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_reader;

    const SAMPLE: &str = "\
  8,0    1        1     0.000000000  1739  Q   W 1024 + 8 [kworker]
  8,0    1        2     0.000100000  1739  D   W 1024 + 8 [kworker]
  8,0    1        3     0.000200000  1739  C   W 1024 + 8 [0]
  8,0    0        4     1.500000000  2000  Q  RA 4096 + 64 [fio]
  8,0    0        5     2.000000123  2000  Q   R 8192 + 8 [fio]
  8,0    0        6     2.100000000  2000  Q   N 0 + 0 [fio]
";

    #[test]
    fn keeps_only_queue_events() {
        let recs = parse_reader(SAMPLE.as_bytes(), BlktraceParser::new()).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].op, OpKind::Write);
        assert_eq!(recs[0].lba, Lba::new(1024));
        assert_eq!(recs[0].sectors, 8);
        assert_eq!(recs[1].op, OpKind::Read); // RA counts as read
        assert_eq!(recs[1].sectors, 64);
    }

    #[test]
    fn timestamps_to_microseconds() {
        let recs = parse_reader(SAMPLE.as_bytes(), BlktraceParser::new()).unwrap();
        assert_eq!(recs[0].timestamp_us, 0);
        assert_eq!(recs[1].timestamp_us, 1_500_000);
        assert_eq!(recs[2].timestamp_us, 2_000_000);
    }

    #[test]
    fn completions_selectable() {
        let recs = parse_reader(SAMPLE.as_bytes(), BlktraceParser::with_action('C')).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].timestamp_us, 200);
    }

    #[test]
    fn skips_summary_and_blank_lines() {
        let text = "\nCPU0 (8,0):\n Reads Queued: 1, 4KiB\n";
        let mut p = BlktraceParser::new();
        assert!(p.parse_line("", 1).unwrap().is_none());
        assert!(p.parse_line("CPU0 (8,0):", 2).unwrap().is_none());
        // Summary body lines do not match Q actions and have odd shapes;
        // they must not produce records (errors are acceptable for truly
        // malformed input, silence for non-matching actions).
        let _ = text;
    }

    #[test]
    fn malformed_lines_error() {
        let mut p = BlktraceParser::new();
        assert!(p
            .parse_line("8,0 1 1 0.0 1 Q R notanumber + 8 [x]", 3)
            .is_err());
        assert!(p.parse_line("8,0 1 1 0.0 1 Q R 10 8 [x]", 4).is_err());
        assert!(p.parse_line("8,0 1 1 bad.ts 1 Q R 10 + 8 [x]", 5).is_err());
        assert!(p.parse_line("8,0 1 1", 6).is_err());
    }

    #[test]
    fn zero_count_skipped() {
        let mut p = BlktraceParser::new();
        let r = p.parse_line("8,0 1 1 0.0 1 Q R 10 + 0 [x]", 1).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn fraction_normalization() {
        assert_eq!(parse_seconds_to_us("1.5"), Some(1_500_000));
        assert_eq!(parse_seconds_to_us("2"), Some(2_000_000));
        assert_eq!(parse_seconds_to_us("0.000001999"), Some(1));
        assert_eq!(parse_seconds_to_us("0.1234567891"), None); // >9 digits
        assert_eq!(parse_seconds_to_us("x.5"), None);
    }
}
