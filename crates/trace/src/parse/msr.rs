//! Parser for the SNIA MSR Cambridge block-trace CSV format.
//!
//! The MSR traces (Narayanan, Donnelly, Rowstron — FAST '08) are the older
//! of the two trace families studied in the paper. Each line is
//!
//! ```text
//! Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//! ```
//!
//! where `Timestamp` and `ResponseTime` are Windows FILETIME values
//! (100 ns ticks since 1601-01-01), `Type` is `Read` or `Write`
//! (case-insensitive), and `Offset`/`Size` are in bytes.
//!
//! The parser normalizes timestamps to microseconds relative to the first
//! record, rounds offsets down and sizes up to whole sectors, and can filter
//! by disk number (the published traces bundle several disks per file).

use super::LineParser;
use crate::error::{Error, Result};
use crate::record::{OpKind, TraceRecord};
use crate::types::{bytes_to_sectors_ceil, Lba, SECTOR_SIZE};

/// Parser state for the MSR CSV format.
///
/// # Example
///
/// ```
/// use smrseek_trace::parse::{parse_reader, MsrParser};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "\
/// 128166372003061629,hm,1,Read,2449920,4096,1339\n\
/// 128166372016853766,hm,1,Write,2449920,4096,231\n";
/// let recs = parse_reader(text.as_bytes(), MsrParser::new())?;
/// assert_eq!(recs.len(), 2);
/// assert_eq!(recs[0].sectors, 8);
/// assert_eq!(recs[0].timestamp_us, 0); // normalized to first record
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MsrParser {
    disk_filter: Option<u32>,
    first_ticks: Option<u64>,
}

impl MsrParser {
    /// Creates a parser that accepts records from every disk in the file.
    pub fn new() -> Self {
        MsrParser::default()
    }

    /// Creates a parser that keeps only records whose `DiskNumber` equals
    /// `disk`.
    pub fn with_disk(disk: u32) -> Self {
        MsrParser {
            disk_filter: Some(disk),
            first_ticks: None,
        }
    }
}

impl LineParser for MsrParser {
    fn parse_line(&mut self, line: &str, line_no: u64) -> Result<Option<TraceRecord>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut fields = line.split(',');
        let ts: u64 = next_field(&mut fields, line_no, "Timestamp")?
            .parse()
            .map_err(|_| Error::parse(line_no, "Timestamp is not an integer"))?;
        let _hostname = next_field(&mut fields, line_no, "Hostname")?;
        let disk: u32 = next_field(&mut fields, line_no, "DiskNumber")?
            .parse()
            .map_err(|_| Error::parse(line_no, "DiskNumber is not an integer"))?;
        let op = match next_field(&mut fields, line_no, "Type")? {
            t if t.eq_ignore_ascii_case("read") => OpKind::Read,
            t if t.eq_ignore_ascii_case("write") => OpKind::Write,
            other => {
                return Err(Error::parse(
                    line_no,
                    format!("Type must be Read or Write, got {other:?}"),
                ))
            }
        };
        let offset: u64 = next_field(&mut fields, line_no, "Offset")?
            .parse()
            .map_err(|_| Error::parse(line_no, "Offset is not an integer"))?;
        let size: u64 = next_field(&mut fields, line_no, "Size")?
            .parse()
            .map_err(|_| Error::parse(line_no, "Size is not an integer"))?;
        // ResponseTime is present in the published traces but unused here.

        if let Some(want) = self.disk_filter {
            if disk != want {
                return Ok(None);
            }
        }
        if size == 0 {
            return Ok(None); // zero-length ops occur in the wild; skip them
        }

        let first = *self.first_ticks.get_or_insert(ts);
        let rel_ticks = ts.saturating_sub(first);
        let timestamp_us = rel_ticks / 10; // 100 ns ticks -> us

        let lba = Lba::from_bytes(offset);
        // Round the end up so partial-sector tails are covered.
        let end_sector = bytes_to_sectors_ceil(offset % SECTOR_SIZE + size);
        let sectors = u32::try_from(end_sector.max(1))
            .map_err(|_| Error::parse(line_no, "Size too large"))?;

        Ok(Some(TraceRecord::new(timestamp_us, op, lba, sectors)))
    }
}

fn next_field<'a>(
    fields: &mut impl Iterator<Item = &'a str>,
    line_no: u64,
    name: &str,
) -> Result<&'a str> {
    fields
        .next()
        .ok_or_else(|| Error::parse(line_no, format!("missing field {name}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_reader;

    const SAMPLE: &str = "\
128166372003061629,src2,2,Write,8016384,24576,1943
128166372006157573,src2,2,Read,12462080,4096,286
128166372011343717,src2,0,Write,0,512,100
128166372016853766,src2,2,write,8016384,4096,231
";

    #[test]
    fn parses_all_disks_by_default() {
        let recs = parse_reader(SAMPLE.as_bytes(), MsrParser::new()).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].op, OpKind::Write);
        assert_eq!(recs[0].lba, Lba::from_bytes(8016384));
        assert_eq!(recs[0].sectors, 48); // 24576 / 512
    }

    #[test]
    fn disk_filter() {
        let recs = parse_reader(SAMPLE.as_bytes(), MsrParser::with_disk(2)).unwrap();
        assert_eq!(recs.len(), 3);
        let recs = parse_reader(SAMPLE.as_bytes(), MsrParser::with_disk(0)).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn timestamps_normalized_to_us() {
        let recs = parse_reader(SAMPLE.as_bytes(), MsrParser::new()).unwrap();
        assert_eq!(recs[0].timestamp_us, 0);
        // (128166372006157573 - 128166372003061629) / 10
        assert_eq!(recs[1].timestamp_us, 309_594);
    }

    #[test]
    fn case_insensitive_type() {
        let recs = parse_reader(SAMPLE.as_bytes(), MsrParser::new()).unwrap();
        assert_eq!(recs[3].op, OpKind::Write);
    }

    #[test]
    fn unaligned_offset_rounds_to_covering_sectors() {
        let line = "0,h,0,Read,100,512,0"; // offset 100, 512 bytes -> spans 2 sectors
        let mut p = MsrParser::new();
        let rec = p.parse_line(line, 1).unwrap().unwrap();
        assert_eq!(rec.lba, Lba::new(0));
        assert_eq!(rec.sectors, 2);
    }

    #[test]
    fn rejects_bad_type() {
        let mut p = MsrParser::new();
        let err = p.parse_line("0,h,0,Trim,0,512,0", 7).unwrap_err();
        assert!(err.to_string().contains("line 7"));
    }

    #[test]
    fn rejects_missing_fields() {
        let mut p = MsrParser::new();
        assert!(p.parse_line("0,h,0,Read", 1).is_err());
        assert!(p.parse_line("x,h,0,Read,0,512,0", 1).is_err());
    }

    #[test]
    fn skips_blank_comment_and_zero_size() {
        let mut p = MsrParser::new();
        assert!(p.parse_line("", 1).unwrap().is_none());
        assert!(p.parse_line("# header", 2).unwrap().is_none());
        assert!(p.parse_line("0,h,0,Read,0,0,0", 3).unwrap().is_none());
    }
}
