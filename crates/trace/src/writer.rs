//! Text serialization of traces.
//!
//! Traces round-trip through the CloudPhysics-style CSV schema
//! ([`write_cp_csv`], parsed by [`crate::parse::CpParser`]) and can be
//! exported to the MSR CSV schema ([`write_msr_csv`]) for use with external
//! tooling that expects the SNIA format.

use crate::error::Result;
use crate::record::{OpKind, TraceRecord};
use std::io::Write;

/// Writes `records` as CloudPhysics-style CSV, including the header line.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use smrseek_trace::writer::write_cp_csv;
/// use smrseek_trace::{Lba, TraceRecord};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut out = Vec::new();
/// write_cp_csv(&mut out, &[TraceRecord::read(5, Lba::new(2), 8)])?;
/// let text = String::from_utf8(out)?;
/// assert!(text.contains("5,R,1024,4096"));
/// # Ok(())
/// # }
/// ```
pub fn write_cp_csv<W: Write>(mut writer: W, records: &[TraceRecord]) -> Result<()> {
    writeln!(writer, "timestamp_us,op,offset_bytes,length_bytes")?;
    for rec in records {
        let op = match rec.op {
            OpKind::Read => 'R',
            OpKind::Write => 'W',
        };
        writeln!(
            writer,
            "{},{},{},{}",
            rec.timestamp_us,
            op,
            rec.lba.to_bytes(),
            rec.len_bytes()
        )?;
    }
    Ok(())
}

/// Writes `records` in the SNIA MSR CSV schema.
///
/// Timestamps are emitted as Windows FILETIME ticks relative to an
/// arbitrary epoch (`epoch_ticks + timestamp_us * 10`), hostname and disk
/// number are fixed to the supplied values, and the response-time column is
/// zero (it is not modeled).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_msr_csv<W: Write>(
    mut writer: W,
    records: &[TraceRecord],
    hostname: &str,
    disk: u32,
) -> Result<()> {
    const EPOCH_TICKS: u64 = 128_166_372_000_000_000; // matches published traces' era
    for rec in records {
        let ticks = EPOCH_TICKS + rec.timestamp_us * 10;
        let ty = match rec.op {
            OpKind::Read => "Read",
            OpKind::Write => "Write",
        };
        writeln!(
            writer,
            "{},{},{},{},{},{},0",
            ticks,
            hostname,
            disk,
            ty,
            rec.lba.to_bytes(),
            rec.len_bytes()
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_reader, CpParser, MsrParser};
    use crate::types::Lba;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::write(0, Lba::new(100), 16),
            TraceRecord::read(250, Lba::new(100), 16),
            TraceRecord::read(300, Lba::new(0), 1),
        ]
    }

    #[test]
    fn cp_csv_roundtrip() {
        let recs = sample();
        let mut buf = Vec::new();
        write_cp_csv(&mut buf, &recs).unwrap();
        let parsed = parse_reader(&buf[..], CpParser::new()).unwrap();
        assert_eq!(parsed, recs);
    }

    #[test]
    fn msr_csv_roundtrip() {
        let recs = sample();
        let mut buf = Vec::new();
        write_msr_csv(&mut buf, &recs, "synth", 3).unwrap();
        let parsed = parse_reader(&buf[..], MsrParser::with_disk(3)).unwrap();
        // MSR timestamps are normalized relative to the first record, which
        // here is already at t=0, so the roundtrip is exact.
        assert_eq!(parsed, recs);
    }

    #[test]
    fn msr_csv_disk_tagging() {
        let recs = sample();
        let mut buf = Vec::new();
        write_msr_csv(&mut buf, &recs, "synth", 3).unwrap();
        assert!(parse_reader(&buf[..], MsrParser::with_disk(4))
            .unwrap()
            .is_empty());
    }
}
