//! Property tests: every serialization format round-trips arbitrary
//! traces losslessly (modulo each format's documented normalizations).

use proptest::prelude::*;
use smrseek_trace::binary::{
    read_binary, top_sector, write_binary, write_binary_v2, BinaryRecordIter, MmapTrace,
};
use smrseek_trace::parse::{parse_reader, CpParser, MsrParser};
use smrseek_trace::writer::{write_cp_csv, write_msr_csv};
use smrseek_trace::{characterize, Lba, OpKind, TraceRecord};

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (
        0u64..1 << 40,   // timestamp_us
        prop::bool::ANY, // is_read
        0u64..1 << 35,   // lba sector
        1u32..1 << 16,   // sectors
    )
        .prop_map(|(ts, is_read, lba, sectors)| {
            let op = if is_read { OpKind::Read } else { OpKind::Write };
            TraceRecord::new(ts, op, Lba::new(lba), sectors)
        })
}

/// Traces whose timestamps are sorted (like real captures).
fn trace_strategy() -> impl Strategy<Value = Vec<TraceRecord>> {
    prop::collection::vec(record_strategy(), 0..200).prop_map(|mut v| {
        v.sort_by_key(|r| r.timestamp_us);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_roundtrip(trace in trace_strategy()) {
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).expect("vec write cannot fail");
        let parsed = read_binary(&buf[..]).expect("own output parses");
        prop_assert_eq!(parsed, trace);
    }

    #[test]
    fn cp_csv_roundtrip(trace in trace_strategy()) {
        let mut buf = Vec::new();
        write_cp_csv(&mut buf, &trace).expect("vec write cannot fail");
        let parsed = parse_reader(&buf[..], CpParser::new()).expect("own output parses");
        prop_assert_eq!(parsed, trace);
    }

    /// MSR timestamps are normalized to the first record; everything else
    /// is exact.
    #[test]
    fn msr_csv_roundtrip_modulo_epoch(trace in trace_strategy()) {
        let mut buf = Vec::new();
        write_msr_csv(&mut buf, &trace, "host", 1).expect("vec write cannot fail");
        let parsed = parse_reader(&buf[..], MsrParser::with_disk(1)).expect("own output parses");
        prop_assert_eq!(parsed.len(), trace.len());
        let t0 = trace.first().map_or(0, |r| r.timestamp_us);
        for (p, o) in parsed.iter().zip(&trace) {
            prop_assert_eq!(p.timestamp_us, o.timestamp_us - t0);
            prop_assert_eq!(p.op, o.op);
            prop_assert_eq!(p.lba, o.lba);
            prop_assert_eq!(p.sectors, o.sectors);
        }
    }

    /// The v2 format round-trips through both readers — streaming
    /// [`BinaryRecordIter`] and zero-copy [`MmapTrace`] — with the header
    /// carrying the correct `top_sector` (one past the highest touched
    /// LBA).
    #[test]
    fn v2_roundtrip_via_iter_and_mmap(trace in trace_strategy()) {
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &trace).expect("vec write cannot fail");

        let mut iter = BinaryRecordIter::new(&buf[..]).expect("own header parses");
        prop_assert_eq!(iter.header().version, 2);
        prop_assert_eq!(iter.header().count, trace.len() as u64);
        prop_assert_eq!(iter.header().top_sector, Some(top_sector(&trace)));
        let streamed: Vec<TraceRecord> = (&mut iter)
            .collect::<Result<_, _>>()
            .expect("own records decode");
        prop_assert_eq!(&streamed, &trace);

        let map = MmapTrace::from_bytes(buf).expect("own image validates");
        prop_assert_eq!(map.len(), trace.len());
        prop_assert_eq!(map.top_sector(), top_sector(&trace));
        prop_assert_eq!(map.iter().collect::<Vec<_>>(), trace);
    }

    /// Staging a trace through the binary cache is transparent: records
    /// parsed from CloudPhysics CSV and the same records replayed from a
    /// v2 mmap image are identical.
    #[test]
    fn csv_parse_equals_binary_replay(trace in trace_strategy()) {
        let mut csv = Vec::new();
        write_cp_csv(&mut csv, &trace).expect("vec write cannot fail");
        let parsed = parse_reader(&csv[..], CpParser::new()).expect("own output parses");

        let mut bin = Vec::new();
        write_binary_v2(&mut bin, &parsed).expect("vec write cannot fail");
        let replayed: Vec<TraceRecord> = MmapTrace::from_bytes(bin)
            .expect("own image validates")
            .iter()
            .collect();
        prop_assert_eq!(replayed, parsed);
    }

    /// Characterization is invariant under serialization roundtrips.
    #[test]
    fn characterization_stable_across_formats(trace in trace_strategy()) {
        let direct = characterize(&trace);
        let mut buf = Vec::new();
        write_binary(&mut buf, &trace).expect("vec write cannot fail");
        let via_binary = characterize(&read_binary(&buf[..]).expect("parses"));
        prop_assert_eq!(direct, via_binary);
    }

    /// Characterization invariants on arbitrary traces.
    #[test]
    fn characterization_invariants(trace in trace_strategy()) {
        let stats = characterize(&trace);
        prop_assert_eq!(stats.total_ops() as usize, trace.len());
        prop_assert!(stats.contiguous_ops <= stats.total_ops());
        let touched: u64 = trace.iter().map(|r| u64::from(r.sectors)).sum();
        prop_assert!(stats.footprint_sectors <= touched.max(1));
        if let Some(max) = stats.max_lba {
            for r in &trace {
                prop_assert!(r.end().sector() - 1 <= max.sector());
            }
        } else {
            prop_assert!(trace.is_empty());
        }
        prop_assert!((0.0..=1.0).contains(&stats.write_ratio()));
        prop_assert!((0.0..=1.0).contains(&stats.sequentiality()));
    }
}
