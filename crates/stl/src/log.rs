//! The log-structured translation layer with composable seek-reduction
//! mechanisms.

use crate::config::{DefragTiming, LsConfig};
use crate::fragstats::FragmentAccessTracker;
use crate::layer::TranslationLayer;
use crate::stats::LsStats;
use serde::{Deserialize, Serialize};
use smrseek_cache::{RangeCache, TierLookup, TierStats, TieredCache};
use smrseek_disk::PhysIo;
use smrseek_extent::{ExtentMap, Segment};
use smrseek_policy::GateSet;
use smrseek_trace::{Lba, OpKind, Pba, TraceRecord};
use std::collections::HashMap;

/// The complete serializable state of a [`LogStructured`] layer.
///
/// Captures every field that influences future behaviour — extent map,
/// frontier, counters, cache/prefetch contents (including LRU order),
/// defragmentation bookkeeping — so that a layer restored via
/// [`LogStructured::from_snapshot`] replays the remainder of a trace
/// exactly as the original would have.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LsSnapshot {
    /// The configuration the layer was built from.
    pub config: LsConfig,
    /// The LBA→PBA extent map.
    pub map: ExtentMap,
    /// Current write-frontier position.
    pub frontier: Pba,
    /// Instrumentation counters.
    pub stats: LsStats,
    /// Fragment statistics, when tracking was enabled.
    pub tracker: Option<FragmentAccessTracker>,
    /// Selective-cache contents (RAM tier plus optional flash tier),
    /// when enabled.
    pub cache: Option<TieredCache>,
    /// Prefetch-buffer contents, when enabled.
    pub prefetch_buffer: Option<RangeCache>,
    /// Defragmentation access gate: `(lba, sectors, count)` triples, sorted
    /// by range for a canonical encoding (the in-memory form is a hash map).
    pub range_accesses: Vec<(u64, u32, u64)>,
    /// Ranges queued for idle-time defragmentation, in queue order.
    pub pending_defrag: Vec<(Lba, u64)>,
    /// Timestamp of the last applied operation.
    pub last_timestamp_us: u64,
}

/// Full-extent-map log-structured translation on an infinite disk
/// (Section II's disk model).
///
/// * Every write is appended at the **write frontier**, which starts above
///   the highest LBA of the workload and only ever advances — cleaning is
///   never needed (infinite disk, §II).
/// * Reads translate through the extent map; never-written (pre-trace)
///   data falls through to its identity location (PBA = LBA, §III).
/// * The three seek-reduction mechanisms of Section IV hook the read path
///   when enabled in [`LsConfig`].
///
/// # Example
///
/// ```
/// use smrseek_stl::{LogStructured, LsConfig, TranslationLayer};
/// use smrseek_trace::{Lba, Pba, TraceRecord};
///
/// let mut ls = LogStructured::new(LsConfig::new(Lba::new(1000)));
/// let w = ls.apply(&TraceRecord::write(0, Lba::new(7), 2));
/// assert_eq!(w[0].pba, Pba::new(1000)); // appended at the frontier
/// let r = ls.apply(&TraceRecord::read(1, Lba::new(7), 2));
/// assert_eq!(r[0].pba, Pba::new(1000)); // translated back
/// ```
#[derive(Debug, Clone)]
pub struct LogStructured {
    config: LsConfig,
    map: ExtentMap,
    frontier: Pba,
    stats: LsStats,
    tracker: Option<FragmentAccessTracker>,
    cache: Option<TieredCache>,
    prefetch_buffer: Option<RangeCache>,
    /// Per-region mechanism gates for the *next* record, set by an
    /// adaptive policy engine via [`set_gates`](Self::set_gates). Purely
    /// transient (the engine re-derives them every record), so they are
    /// neither snapshotted nor compared; the default is fully permissive —
    /// exactly the fixed-mechanism behaviour of a policy-free run.
    gates: GateSet,
    /// Fragmented-read access counts per exact logical range, for the
    /// defragmentation `min_accesses` gate.
    range_accesses: HashMap<(u64, u32), u64>,
    /// Ranges queued for idle-time defragmentation.
    pending_defrag: Vec<(Lba, u64)>,
    /// Timestamp of the last applied operation (idle-gap detection).
    last_timestamp_us: u64,
}

impl LogStructured {
    /// Creates a layer from a configuration.
    pub fn new(config: LsConfig) -> Self {
        LogStructured {
            frontier: config.frontier_start,
            map: ExtentMap::new(),
            stats: LsStats::default(),
            tracker: config.track_fragments.then(FragmentAccessTracker::new),
            cache: config.cache.map(|c| match config.flash_cache_bytes {
                Some(flash) => TieredCache::with_flash_bytes(c.capacity_bytes, flash),
                None => TieredCache::single_bytes(c.capacity_bytes),
            }),
            prefetch_buffer: config
                .prefetch
                .map(|p| RangeCache::with_capacity_bytes(p.buffer_bytes)),
            gates: GateSet::default(),
            range_accesses: HashMap::new(),
            pending_defrag: Vec::new(),
            last_timestamp_us: 0,
            config,
        }
    }

    /// Convenience constructor: plain log-structured translation with the
    /// frontier derived from the trace (see [`LsConfig::for_trace`]).
    pub fn for_trace(records: &[TraceRecord]) -> Self {
        Self::new(LsConfig::for_trace(records))
    }

    /// Current write-frontier position.
    pub fn frontier(&self) -> Pba {
        self.frontier
    }

    /// The extent map (for fragmentation analyses).
    pub fn map(&self) -> &ExtentMap {
        &self.map
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> LsStats {
        self.stats
    }

    /// The configuration this layer was built from.
    pub fn config(&self) -> &LsConfig {
        &self.config
    }

    /// Fragment statistics, when tracking was enabled.
    pub fn fragment_tracker(&self) -> Option<&FragmentAccessTracker> {
        self.tracker.as_ref()
    }

    /// The selective cache (RAM tier plus optional flash), when enabled.
    pub fn cache(&self) -> Option<&TieredCache> {
        self.cache.as_ref()
    }

    /// Tier-level event counters of the selective cache, when it is
    /// configured with a flash tier (a single-tier cache has nothing
    /// tier-level to report).
    pub fn tier_stats(&self) -> Option<TierStats> {
        self.cache
            .as_ref()
            .filter(|c| c.has_flash())
            .map(|c| c.stats())
    }

    /// Zeroes the tiered cache's event counters, keeping contents intact
    /// (sharded-replay boundary normalization; see
    /// `TieredCache::reset_stats`).
    pub fn reset_tier_stats(&mut self) {
        if let Some(cache) = &mut self.cache {
            cache.reset_stats();
        }
    }

    /// Sets the per-region mechanism gates the *next* record is served
    /// under. An adaptive policy engine calls this before every
    /// [`apply`](TranslationLayer::apply); without a policy the gates stay
    /// at their permissive default and behaviour is identical to the fixed
    /// mechanisms.
    pub fn set_gates(&mut self, gates: GateSet) {
        self.gates = gates;
    }

    /// The prefetch buffer, when enabled.
    pub fn prefetch_buffer(&self) -> Option<&RangeCache> {
        self.prefetch_buffer.as_ref()
    }

    /// Ranges currently queued for idle-time defragmentation.
    pub fn pending_defrag(&self) -> &[(Lba, u64)] {
        &self.pending_defrag
    }

    /// Captures the layer's complete state for a checkpoint.
    pub fn to_snapshot(&self) -> LsSnapshot {
        let mut range_accesses: Vec<(u64, u32, u64)> = self
            .range_accesses
            .iter()
            .map(|(&(lba, sectors), &count)| (lba, sectors, count))
            .collect();
        range_accesses.sort_unstable();
        LsSnapshot {
            config: self.config,
            map: self.map.clone(),
            frontier: self.frontier,
            stats: self.stats,
            tracker: self.tracker.clone(),
            cache: self.cache.clone(),
            prefetch_buffer: self.prefetch_buffer.clone(),
            range_accesses,
            pending_defrag: self.pending_defrag.clone(),
            last_timestamp_us: self.last_timestamp_us,
        }
    }

    /// Reconstructs a layer from captured state; applying the remaining
    /// records yields exactly what the uninterrupted layer would have.
    pub fn from_snapshot(snap: LsSnapshot) -> Self {
        LogStructured {
            map: snap.map,
            frontier: snap.frontier,
            stats: snap.stats,
            tracker: snap.tracker,
            cache: snap.cache,
            prefetch_buffer: snap.prefetch_buffer,
            gates: GateSet::default(),
            range_accesses: snap
                .range_accesses
                .into_iter()
                .map(|(lba, sectors, count)| ((lba, sectors), count))
                .collect(),
            pending_defrag: snap.pending_defrag,
            last_timestamp_us: snap.last_timestamp_us,
            config: snap.config,
        }
    }

    /// Rewrites every queued range as one batch at the frontier (a single
    /// seek for the whole batch) and returns the physical writes. Called
    /// automatically when an idle gap is detected; callable directly to
    /// model an explicit flush (e.g. at shutdown).
    pub fn flush_defrag_queue(&mut self) -> Vec<PhysIo> {
        let mut out = Vec::new();
        self.flush_defrag_queue_into(&mut |io| out.push(io));
        out
    }

    /// Sink form of [`flush_defrag_queue`](Self::flush_defrag_queue): emits
    /// the same writes in the same order without materializing a `Vec`.
    fn flush_defrag_queue_into(&mut self, sink: &mut dyn FnMut(PhysIo)) {
        let pending = std::mem::take(&mut self.pending_defrag);
        for (lba, sectors) in pending {
            // Skip ranges that became contiguous in the meantime (e.g. a
            // host overwrite re-wrote the whole range).
            if self.physical_runs(lba, sectors).len() < 2 {
                continue;
            }
            self.append_into(lba, sectors, sink);
            self.stats.defrag_rewrites += 1;
            self.stats.defrag_sectors += sectors;
        }
    }

    /// Appends `sectors` at the frontier for logical range starting `lba`,
    /// emitting the physical writes (one, unless zoned backing splits the
    /// append at guard bands).
    fn append_into(&mut self, lba: Lba, sectors: u64, sink: &mut dyn FnMut(PhysIo)) {
        match self.config.zone_sectors {
            None => {
                let at = self.frontier;
                self.map.insert(lba, sectors, at);
                self.frontier += sectors;
                self.stats.phys_writes += 1;
                sink(PhysIo::write(at, sectors));
            }
            Some(z) => self.append_zoned_into(lba, sectors, z, sink),
        }
    }

    /// Zoned append: the last sector of each zone is a guard band; the
    /// frontier skips it and the write splits into per-zone pieces. Pieces
    /// are physically non-adjacent (the guard separates them), so later
    /// reads see the discontinuity.
    fn append_zoned_into(&mut self, lba: Lba, sectors: u64, z: u64, sink: &mut dyn FnMut(PhysIo)) {
        let mut cur_lba = lba;
        let mut left = sectors;
        while left > 0 {
            let offset = self.frontier.sector() % z;
            if offset == z - 1 {
                // Skip the guard sector.
                self.frontier += 1;
                continue;
            }
            let room = (z - 1) - offset;
            let take = left.min(room);
            self.map.insert(cur_lba, take, self.frontier);
            sink(PhysIo::write(self.frontier, take));
            self.stats.phys_writes += 1;
            self.frontier += take;
            cur_lba += take;
            left -= take;
        }
    }

    /// The physically-contiguous runs a read of `[lba, lba+sectors)` must
    /// fetch, holes resolved to identity placement, adjacent pieces merged.
    pub fn physical_runs(&self, lba: Lba, sectors: u64) -> Vec<(Pba, u64)> {
        let mut runs: Vec<(u64, u64)> = Vec::new();
        // lookup_each folds the tiles without materializing a segment Vec —
        // this runs once per translated read, the hottest map operation.
        self.map.lookup_each(lba, sectors, |seg| {
            let (start, len) = match seg {
                Segment::Mapped(e) => (e.pba.sector(), e.sectors),
                Segment::Hole { lba, sectors } => (lba.sector(), sectors),
            };
            match runs.last_mut() {
                Some(last) if last.0 + last.1 == start => last.1 += len,
                _ => runs.push((start, len)),
            }
        });
        runs.into_iter().map(|(s, l)| (Pba::new(s), l)).collect()
    }

    fn handle_read_into(&mut self, rec: &TraceRecord, sink: &mut dyn FnMut(PhysIo)) {
        let sectors = u64::from(rec.sectors);
        let runs = self.physical_runs(rec.lba, sectors);
        let fragmented = runs.len() > 1;
        if fragmented {
            self.stats.fragmented_reads += 1;
            if let Some(tracker) = &mut self.tracker {
                tracker.record_read(&runs);
            }
        }

        for &(pba, len) in &runs {
            // Alg. 3: only fragments of fragmented reads consult the cache.
            if fragmented {
                if let Some(cache) = &mut self.cache {
                    match cache.lookup(pba, len) {
                        // A flash hit pays the flash latency but, like a
                        // RAM hit, avoids the disk entirely (and the range
                        // was promoted back into RAM).
                        TierLookup::Ram | TierLookup::Flash => {
                            self.stats.cache_hit_fragments += 1;
                            continue; // served from cache: no physical I/O
                        }
                        // Alg. 3: ReadDisk(fragment); WriteCache(fragment)
                        // — unless the policy denies this region the fill.
                        TierLookup::Miss if self.gates.cache_admit => {
                            cache.admit(pba, len);
                            self.stats.cache_miss_fragments += 1;
                        }
                        TierLookup::Miss => {}
                    }
                }
                // Alg. 2: look-ahead-behind around fragments; the policy
                // gate widens or narrows the window per region.
                if let (Some(buffer), Some(p)) = (&mut self.prefetch_buffer, self.config.prefetch) {
                    if buffer.covers(pba, len) {
                        self.stats.prefetch_hit_fragments += 1;
                        continue; // already in the drive buffer
                    }
                    let behind = self.gates.prefetch.apply(p.behind_sectors);
                    let ahead = self.gates.prefetch.apply(p.ahead_sectors);
                    let pre_start = Pba::new(pba.sector().saturating_sub(behind));
                    let total = (pba.sector() - pre_start.sector()) + len + ahead;
                    buffer.insert(pre_start, total);
                    self.stats.prefetched_sectors += total - len;
                    self.stats.phys_reads += 1;
                    sink(PhysIo::read(pre_start, total));
                    continue;
                }
            }
            self.stats.phys_reads += 1;
            sink(PhysIo::read(pba, len));
        }

        // Alg. 1: opportunistic defragmentation — the fragmented data was
        // just reordered in RAM to serve the read; write it back
        // contiguously at the frontier.
        if fragmented {
            if let Some(d) = self.config.defrag {
                let key = (rec.lba.sector(), rec.sectors);
                let count = self.range_accesses.entry(key).or_insert(0);
                *count += 1;
                // The policy gate can veto the rewrite for cold regions;
                // the access count keeps accumulating so the range rewrites
                // promptly once its region earns the gate.
                if self.gates.defrag && runs.len() >= d.min_fragments && *count >= d.min_accesses {
                    match d.timing {
                        DefragTiming::Immediate => {
                            self.append_into(rec.lba, sectors, sink);
                            self.stats.defrag_rewrites += 1;
                            self.stats.defrag_sectors += sectors;
                        }
                        DefragTiming::Idle { .. } => {
                            let entry = (rec.lba, sectors);
                            if !self.pending_defrag.contains(&entry) {
                                self.pending_defrag.push(entry);
                            }
                        }
                    }
                    self.range_accesses.remove(&key);
                }
            }
        }
    }

    /// Sink form of [`TranslationLayer::apply`]: applies one record, calling
    /// `sink` with each physical operation in the exact order `apply` would
    /// have returned them, without materializing a `Vec`.
    pub fn apply_into(&mut self, rec: &TraceRecord, sink: &mut dyn FnMut(PhysIo)) {
        // Idle-time defragmentation: if the gap since the previous
        // operation was long enough, the queued rewrites happened during
        // it — emit them before this operation's I/O.
        if let Some(d) = self.config.defrag {
            if let DefragTiming::Idle { min_gap_us } = d.timing {
                if !self.pending_defrag.is_empty()
                    && rec.timestamp_us.saturating_sub(self.last_timestamp_us) >= min_gap_us
                {
                    self.flush_defrag_queue_into(sink);
                }
            }
        }
        self.last_timestamp_us = rec.timestamp_us;
        match rec.op {
            OpKind::Write => {
                self.stats.logical_writes += 1;
                self.append_into(rec.lba, u64::from(rec.sectors), sink);
            }
            OpKind::Read => {
                self.stats.logical_reads += 1;
                self.handle_read_into(rec, sink);
            }
        }
    }

    /// Applies one record to the layer's *behavioural* state only, returning
    /// the physical sector one past the end of the last I/O a full
    /// [`apply`](TranslationLayer::apply) would have emitted (`None` when
    /// the record emits no I/O, in which case the disk head does not move).
    ///
    /// This is the sharded-replay prepass primitive: it advances everything
    /// that influences future translations and emitted I/O — extent map,
    /// frontier, cache and prefetch contents, defragmentation bookkeeping,
    /// the idle-gap timestamp — while skipping I/O materialization.
    /// Instrumentation counters are NOT kept exact (boundary snapshots
    /// taken from a prepass layer normalize them away), so a layer driven
    /// by this method must never surface its stats or fragment tracker.
    pub fn apply_transition(&mut self, rec: &TraceRecord) -> Option<u64> {
        // Fast path: a mechanism-free read mutates nothing but the
        // timestamp, and the head lands one past the translation of the
        // final logical sector — no need to walk the physical runs.
        if rec.op == OpKind::Read
            && rec.sectors != 0
            && self.config.defrag.is_none()
            && self.cache.is_none()
            && self.prefetch_buffer.is_none()
            && self.tracker.is_none()
        {
            self.last_timestamp_us = rec.timestamp_us;
            let last = rec.lba.sector() + u64::from(rec.sectors) - 1;
            let phys = self
                .map
                .translate(Lba::new(last))
                .map_or(last, |p| p.sector());
            return Some(phys + 1);
        }
        let mut last_end = None;
        self.apply_into(rec, &mut |io| last_end = Some(io.end().sector()));
        last_end
    }
}

impl TranslationLayer for LogStructured {
    fn apply(&mut self, rec: &TraceRecord) -> Vec<PhysIo> {
        let mut out = Vec::new();
        self.apply_into(rec, &mut |io| out.push(io));
        out
    }

    fn name(&self) -> &str {
        match (
            self.config.defrag.is_some(),
            self.config.prefetch.is_some(),
            self.config.cache.is_some(),
        ) {
            (false, false, false) => "LS",
            (true, false, false) => "LS+defrag",
            (false, true, false) => "LS+prefetch",
            (false, false, true) if self.config.flash_cache_bytes.is_some() => "LS+cache2",
            (false, false, true) => "LS+cache",
            _ => "LS+combined",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, DefragConfig, PrefetchConfig};

    fn lba(s: u64) -> Lba {
        Lba::new(s)
    }
    fn pba(s: u64) -> Pba {
        Pba::new(s)
    }

    fn plain(frontier: u64) -> LogStructured {
        LogStructured::new(LsConfig::new(lba(frontier)))
    }

    #[test]
    fn writes_append_sequentially() {
        let mut ls = plain(1000);
        let a = ls.apply(&TraceRecord::write(0, lba(500), 8));
        let b = ls.apply(&TraceRecord::write(1, lba(0), 4));
        assert_eq!(a, vec![PhysIo::write(pba(1000), 8)]);
        assert_eq!(b, vec![PhysIo::write(pba(1008), 4)]);
        assert_eq!(ls.frontier(), pba(1012));
        assert_eq!(ls.stats().logical_writes, 2);
    }

    #[test]
    fn read_of_unwritten_data_is_identity() {
        let mut ls = plain(1000);
        let r = ls.apply(&TraceRecord::read(0, lba(10), 8));
        assert_eq!(r, vec![PhysIo::read(pba(10), 8)]);
        assert_eq!(ls.stats().fragmented_reads, 0);
    }

    #[test]
    fn read_after_write_translates() {
        let mut ls = plain(1000);
        ls.apply(&TraceRecord::write(0, lba(50), 8));
        let r = ls.apply(&TraceRecord::read(1, lba(50), 8));
        assert_eq!(r, vec![PhysIo::read(pba(1000), 8)]);
    }

    #[test]
    fn update_fragments_subsequent_read() {
        // The paper's Fig 6 scenario: contiguous data fragmented by updates.
        let mut ls = plain(1000);
        ls.apply(&TraceRecord::write(0, lba(0), 6)); // LBA 0..6 at 1000..1006
        ls.apply(&TraceRecord::write(1, lba(2), 1)); // update LBA 2 -> 1006
        ls.apply(&TraceRecord::write(2, lba(4), 1)); // update LBA 4 -> 1007
        let r = ls.apply(&TraceRecord::read(3, lba(1), 4)); // read LBA 1..5
                                                            // pieces: LBA1 @1001, LBA2 @1006, LBA3 @1003, LBA4 @1007
        assert_eq!(
            r,
            vec![
                PhysIo::read(pba(1001), 1),
                PhysIo::read(pba(1006), 1),
                PhysIo::read(pba(1003), 1),
                PhysIo::read(pba(1007), 1),
            ]
        );
        assert_eq!(ls.stats().fragmented_reads, 1);
    }

    #[test]
    fn straddling_read_merges_identity_and_log() {
        let mut ls = plain(1000);
        ls.apply(&TraceRecord::write(0, lba(10), 2)); // 10..12 -> 1000..1002
                                                      // Read 8..14: hole [8,10) @8, mapped [10,12) @1000, hole [12,14) @12.
        let r = ls.apply(&TraceRecord::read(1, lba(8), 6));
        assert_eq!(
            r,
            vec![
                PhysIo::read(pba(8), 2),
                PhysIo::read(pba(1000), 2),
                PhysIo::read(pba(12), 2),
            ]
        );
    }

    #[test]
    fn sequential_log_writes_coalesce_for_reads() {
        let mut ls = plain(1000);
        // Logically-sequential writes land physically sequential: the
        // "small file creation" log-friendly case.
        ls.apply(&TraceRecord::write(0, lba(0), 4));
        ls.apply(&TraceRecord::write(1, lba(4), 4));
        ls.apply(&TraceRecord::write(2, lba(8), 4));
        let r = ls.apply(&TraceRecord::read(3, lba(0), 12));
        assert_eq!(r, vec![PhysIo::read(pba(1000), 12)]);
    }

    #[test]
    fn defrag_rewrites_fragmented_read() {
        let cfg = LsConfig::new(lba(1000)).with_defrag(DefragConfig::default());
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(1, lba(2), 1));
        let r1 = ls.apply(&TraceRecord::read(2, lba(0), 6));
        // 3 fragment reads + 1 defrag write at the frontier.
        assert_eq!(r1.len(), 4);
        let w = r1.last().unwrap();
        assert_eq!(w.op, OpKind::Write);
        assert_eq!(w.sectors, 6);
        assert_eq!(ls.stats().defrag_rewrites, 1);
        assert_eq!(ls.stats().defrag_sectors, 6);
        // Re-read: now contiguous, single physical read, no more rewrites.
        let r2 = ls.apply(&TraceRecord::read(3, lba(0), 6));
        assert_eq!(r2.len(), 1);
        assert_eq!(r2[0].pba, w.pba);
        assert_eq!(ls.stats().defrag_rewrites, 1);
    }

    #[test]
    fn defrag_min_fragments_gate() {
        let cfg = LsConfig::new(lba(1000)).with_defrag(DefragConfig {
            min_fragments: 3,
            min_accesses: 1,
            ..DefragConfig::default()
        });
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(1, lba(2), 1));
        // 3 fragments -> meets N=3.
        let r = ls.apply(&TraceRecord::read(2, lba(0), 6));
        assert_eq!(ls.stats().defrag_rewrites, 1);
        assert_eq!(r.len(), 4);
        // A 2-fragment read elsewhere does not trigger.
        ls.apply(&TraceRecord::write(3, lba(100), 2));
        let r = ls.apply(&TraceRecord::read(4, lba(100), 3)); // mapped + hole
        assert_eq!(r.len(), 2);
        assert_eq!(ls.stats().defrag_rewrites, 1);
    }

    #[test]
    fn defrag_min_accesses_gate() {
        let cfg = LsConfig::new(lba(1000)).with_defrag(DefragConfig {
            min_fragments: 2,
            min_accesses: 2,
            ..DefragConfig::default()
        });
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(1, lba(2), 1));
        ls.apply(&TraceRecord::read(2, lba(0), 6)); // 1st access: no rewrite
        assert_eq!(ls.stats().defrag_rewrites, 0);
        ls.apply(&TraceRecord::read(3, lba(0), 6)); // 2nd access: rewrite
        assert_eq!(ls.stats().defrag_rewrites, 1);
        ls.apply(&TraceRecord::read(4, lba(0), 6)); // now defragmented
        assert_eq!(ls.stats().defrag_rewrites, 1);
    }

    #[test]
    fn selective_cache_absorbs_repeat_fragmented_reads() {
        let cfg = LsConfig::new(lba(1000)).with_cache(CacheConfig::default());
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(1, lba(2), 1));
        let r1 = ls.apply(&TraceRecord::read(2, lba(0), 6));
        assert_eq!(r1.len(), 3); // all misses -> all disk reads
        assert_eq!(ls.stats().cache_miss_fragments, 3);
        let r2 = ls.apply(&TraceRecord::read(3, lba(0), 6));
        assert!(r2.is_empty(), "fully cached: no physical I/O");
        assert_eq!(ls.stats().cache_hit_fragments, 3);
    }

    #[test]
    fn unfragmented_reads_bypass_cache() {
        let cfg = LsConfig::new(lba(1000)).with_cache(CacheConfig::default());
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        let r1 = ls.apply(&TraceRecord::read(1, lba(0), 6));
        let r2 = ls.apply(&TraceRecord::read(2, lba(0), 6));
        assert_eq!(r1.len(), 1);
        assert_eq!(r2.len(), 1); // not cached: Alg. 3 gates on fragmentation
        assert_eq!(ls.stats().cache_hit_fragments, 0);
        assert_eq!(ls.stats().cache_miss_fragments, 0);
    }

    #[test]
    fn prefetch_covers_nearby_fragments() {
        // The paper's Fig 9 scenario: mis-ordered updates land physically
        // near each other; fetching around one fragment captures the rest.
        let cfg = LsConfig::new(lba(10_000)).with_prefetch(PrefetchConfig {
            behind_sectors: 8,
            ahead_sectors: 8,
            buffer_bytes: 1 << 20,
        });
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6)); // 0..6 @10000
        ls.apply(&TraceRecord::write(1, lba(3), 1)); // @10006
        ls.apply(&TraceRecord::write(2, lba(2), 1)); // @10007
        ls.apply(&TraceRecord::write(3, lba(4), 1)); // @10008
                                                     // Read 0..6: fragments @10000(len2), @10007(1), @10006(1), @10008(1), @10005(1)
        let r = ls.apply(&TraceRecord::read(4, lba(0), 6));
        // First fragment read enlarges to cover 8 ahead: 10000-8..10000+2+8,
        // which covers 10006..10009 -> remaining fragments all hit buffer
        // except @10005? 10005 < 10010 so covered too.
        assert_eq!(r.len(), 1, "one enlarged read serves all fragments: {r:?}");
        assert_eq!(ls.stats().prefetch_hit_fragments, 4);
        assert!(ls.stats().prefetched_sectors >= 8);
    }

    #[test]
    fn prefetch_far_fragments_still_seek() {
        let cfg = LsConfig::new(lba(100_000)).with_prefetch(PrefetchConfig {
            behind_sectors: 4,
            ahead_sectors: 4,
            buffer_bytes: 1 << 20,
        });
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 4)); // @100000
                                                     // Push the frontier far away.
        ls.apply(&TraceRecord::write(1, lba(1000), 5000)); // @100004..105004
        ls.apply(&TraceRecord::write(2, lba(2), 1)); // @105004
        let r = ls.apply(&TraceRecord::read(3, lba(0), 4));
        // Fragments: @100000(2), @105004(1), @100003(1). The second is far
        // beyond the first's look-ahead, so it needs its own read; the third
        // was covered by the first read's look-behind+data... check len.
        assert_eq!(r.len(), 2, "{r:?}");
        assert_eq!(ls.stats().prefetch_hit_fragments, 1);
    }

    #[test]
    fn fragment_tracking_records_reads() {
        let cfg = LsConfig::new(lba(1000)).with_fragment_tracking();
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(1, lba(2), 1));
        ls.apply(&TraceRecord::read(2, lba(0), 6));
        ls.apply(&TraceRecord::read(3, lba(0), 6));
        ls.apply(&TraceRecord::read(4, lba(100), 1)); // unfragmented: ignored
        let t = ls.fragment_tracker().unwrap();
        assert_eq!(t.fragmented_read_count(), 2);
        assert_eq!(t.per_read_fragment_counts(), &[3, 3]);
        assert_eq!(t.popularity()[0].access_count, 2);
    }

    #[test]
    fn flash_tier_serves_fragments_evicted_from_ram() {
        // RAM holds only 4 sectors; the flash tier holds the rest. A
        // single-tier cache this small would thrash and re-read from disk.
        let cfg = LsConfig::new(lba(100_000))
            .with_cache(CacheConfig {
                capacity_bytes: 4 * 512,
            })
            .with_flash_cache(1 << 20);
        let mut ls = LogStructured::new(cfg);
        // Two separate fragmented ranges, each with 4-sector fragments.
        for (t, base) in [(0u64, 0u64), (10, 100)] {
            ls.apply(&TraceRecord::write(t, lba(base), 8));
            ls.apply(&TraceRecord::write(t + 1, lba(base + 2), 2));
        }
        ls.apply(&TraceRecord::read(20, lba(0), 8)); // fills RAM, misses
        ls.apply(&TraceRecord::read(21, lba(100), 8)); // evicts range 0 to flash
        let r = ls.apply(&TraceRecord::read(22, lba(0), 8));
        assert!(r.is_empty(), "flash absorbed the re-read: {r:?}");
        let tiers = ls.tier_stats().unwrap();
        assert!(tiers.flash_hits > 0, "{tiers:?}");
        assert!(tiers.demoted_sectors > 0, "{tiers:?}");
    }

    #[test]
    fn cache_admit_gate_denies_fills() {
        let cfg = LsConfig::new(lba(1000)).with_cache(CacheConfig::default());
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(1, lba(2), 1));
        ls.set_gates(GateSet {
            cache_admit: false,
            ..GateSet::default()
        });
        let r1 = ls.apply(&TraceRecord::read(2, lba(0), 6));
        let r2 = ls.apply(&TraceRecord::read(3, lba(0), 6));
        assert_eq!(r1.len(), 3);
        assert_eq!(r2.len(), 3, "denied fills: second read still hits disk");
        assert_eq!(ls.stats().cache_hit_fragments, 0);
        assert_eq!(ls.stats().cache_miss_fragments, 0, "denied fills uncounted");
        // Re-admitting restores Alg. 3 behaviour.
        ls.set_gates(GateSet::default());
        ls.apply(&TraceRecord::read(4, lba(0), 6));
        let r = ls.apply(&TraceRecord::read(5, lba(0), 6));
        assert!(r.is_empty());
        assert_eq!(ls.stats().cache_hit_fragments, 3);
    }

    #[test]
    fn defrag_gate_denies_rewrites_but_accumulates_evidence() {
        let cfg = LsConfig::new(lba(1000)).with_defrag(DefragConfig {
            min_accesses: 2,
            ..DefragConfig::default()
        });
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(1, lba(2), 1));
        ls.set_gates(GateSet {
            defrag: false,
            ..GateSet::default()
        });
        ls.apply(&TraceRecord::read(2, lba(0), 6));
        ls.apply(&TraceRecord::read(3, lba(0), 6));
        ls.apply(&TraceRecord::read(4, lba(0), 6));
        assert_eq!(ls.stats().defrag_rewrites, 0, "gate vetoed every rewrite");
        // The access count kept accumulating, so the first gated-open
        // fragmented read rewrites immediately.
        ls.set_gates(GateSet::default());
        ls.apply(&TraceRecord::read(5, lba(0), 6));
        assert_eq!(ls.stats().defrag_rewrites, 1);
    }

    #[test]
    fn prefetch_gate_scales_the_window() {
        use smrseek_policy::PrefetchWindow;
        let p = PrefetchConfig {
            behind_sectors: 8,
            ahead_sectors: 8,
            buffer_bytes: 1 << 20,
        };
        let mut prefetched = Vec::new();
        for window in [
            PrefetchWindow::Narrow,
            PrefetchWindow::Normal,
            PrefetchWindow::Wide,
        ] {
            let mut ls = LogStructured::new(LsConfig::new(lba(100_000)).with_prefetch(p));
            // Fragments far enough apart that every window misses on the
            // same two fragments and hits the third — only the prefetched
            // volume varies with the gate.
            ls.apply(&TraceRecord::write(0, lba(0), 4)); // @100000
            ls.apply(&TraceRecord::write(1, lba(1000), 5000)); // push frontier
            ls.apply(&TraceRecord::write(2, lba(2), 1)); // @105004
            ls.set_gates(GateSet {
                prefetch: window,
                ..GateSet::default()
            });
            ls.apply(&TraceRecord::read(3, lba(0), 4));
            assert_eq!(ls.stats().prefetch_hit_fragments, 1);
            prefetched.push(ls.stats().prefetched_sectors);
        }
        assert!(prefetched[0] < prefetched[1], "{prefetched:?}");
        assert!(prefetched[1] < prefetched[2], "{prefetched:?}");
    }

    #[test]
    fn name_reflects_mechanisms() {
        assert_eq!(plain(0).name(), "LS");
        let d = LogStructured::new(LsConfig::default().with_defrag(DefragConfig::default()));
        assert_eq!(d.name(), "LS+defrag");
        let p = LogStructured::new(LsConfig::default().with_prefetch(PrefetchConfig::default()));
        assert_eq!(p.name(), "LS+prefetch");
        let c = LogStructured::new(LsConfig::default().with_cache(CacheConfig::default()));
        assert_eq!(c.name(), "LS+cache");
        let c2 = LogStructured::new(
            LsConfig::default()
                .with_cache(CacheConfig::default())
                .with_flash_cache(1 << 20),
        );
        assert_eq!(c2.name(), "LS+cache2");
        let all = LogStructured::new(
            LsConfig::default()
                .with_defrag(DefragConfig::default())
                .with_cache(CacheConfig::default()),
        );
        assert_eq!(all.name(), "LS+combined");
    }

    #[test]
    fn idle_defrag_queues_until_gap() {
        use crate::config::DefragConfig;
        let cfg = LsConfig::new(lba(1000)).with_defrag(DefragConfig::idle(10_000));
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(100, lba(2), 1));
        // Fragmented read: queues, does not rewrite inline.
        let r = ls.apply(&TraceRecord::read(200, lba(0), 6));
        assert_eq!(r.len(), 3, "no inline rewrite: {r:?}");
        assert_eq!(ls.pending_defrag(), &[(lba(0), 6)]);
        assert_eq!(ls.stats().defrag_rewrites, 0);
        // Next op arrives within the gap: still queued.
        let r = ls.apply(&TraceRecord::read(5_000, lba(0), 6));
        assert_eq!(r.len(), 3);
        assert_eq!(ls.pending_defrag().len(), 1); // dedup via access gate reset
                                                  // An op after a >=10ms gap flushes the queue first.
        let r = ls.apply(&TraceRecord::read(50_000, lba(0), 6));
        let writes: Vec<_> = r.iter().filter(|io| io.op == OpKind::Write).collect();
        assert_eq!(writes.len(), 1, "batched rewrite: {r:?}");
        assert_eq!(ls.stats().defrag_rewrites, 1);
        assert!(ls.pending_defrag().is_empty());
        // The read that triggered the flush now sees defragmented data.
        let r = ls.apply(&TraceRecord::read(50_100, lba(0), 6));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn idle_defrag_batch_is_sequential_at_frontier() {
        use crate::config::DefragConfig;
        let cfg = LsConfig::new(lba(1000)).with_defrag(DefragConfig::idle(1_000));
        let mut ls = LogStructured::new(cfg);
        // Create two separate fragmented ranges.
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(1, lba(2), 1));
        ls.apply(&TraceRecord::write(2, lba(100), 6));
        ls.apply(&TraceRecord::write(3, lba(102), 1));
        ls.apply(&TraceRecord::read(4, lba(0), 6));
        ls.apply(&TraceRecord::read(5, lba(100), 6));
        assert_eq!(ls.pending_defrag().len(), 2);
        // Idle gap: the next op is preceded by BOTH rewrites,
        // back-to-back at the frontier (physically contiguous).
        let r = ls.apply(&TraceRecord::read(1_000_000, lba(500), 1));
        let writes: Vec<&PhysIo> = r.iter().filter(|io| io.op == OpKind::Write).collect();
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[0].end(), writes[1].pba, "batch is contiguous");
        assert_eq!(ls.stats().defrag_rewrites, 2);
    }

    #[test]
    fn idle_defrag_skips_ranges_fixed_meanwhile() {
        use crate::config::DefragConfig;
        let cfg = LsConfig::new(lba(1000)).with_defrag(DefragConfig::idle(1_000));
        let mut ls = LogStructured::new(cfg);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(1, lba(2), 1));
        ls.apply(&TraceRecord::read(2, lba(0), 6)); // queued
                                                    // The host overwrites the whole range: now contiguous by itself.
        ls.apply(&TraceRecord::write(3, lba(0), 6));
        let flushed = ls.flush_defrag_queue();
        assert!(
            flushed.is_empty(),
            "nothing left to defragment: {flushed:?}"
        );
        assert_eq!(ls.stats().defrag_rewrites, 0);
    }

    #[test]
    fn zoned_append_splits_at_guard_bands() {
        let cfg = LsConfig::new(lba(1000)).with_zones(8); // 7 data + 1 guard
        let mut ls = LogStructured::new(cfg);
        // Frontier starts at 1000 (offset 0 in its zone of [1000..1008)?
        // zones are absolute: zone of 1000 is [1000/8*8=1000? 1000%8=0].
        let w = ls.apply(&TraceRecord::write(0, lba(0), 10));
        // Zone layout: sectors ..1006 data, 1007 guard, 1008.. next zone.
        assert_eq!(
            w,
            vec![PhysIo::write(pba(1000), 7), PhysIo::write(pba(1008), 3)]
        );
        assert_eq!(ls.frontier(), pba(1011));
        // A read of the whole range splits at the guard.
        let r = ls.apply(&TraceRecord::read(1, lba(0), 10));
        assert_eq!(
            r,
            vec![PhysIo::read(pba(1000), 7), PhysIo::read(pba(1008), 3)]
        );
    }

    #[test]
    fn zoned_append_skips_guard_exactly() {
        let cfg = LsConfig::new(lba(0)).with_zones(4); // 3 data + 1 guard
        let mut ls = LogStructured::new(cfg);
        // Writes of 3 sectors fill exactly one zone's data each.
        for t in 0..3u64 {
            let w = ls.apply(&TraceRecord::write(t, lba(t * 3), 3));
            assert_eq!(w.len(), 1, "no split needed: {w:?}");
            assert_eq!(w[0].pba, pba(t * 4));
        }
        assert_eq!(ls.frontier(), pba(11)); // 8 + 3, guard at 11 pending
                                            // Map translations stay correct across guards.
        assert_eq!(ls.map().translate(lba(4)), Some(pba(5)));
        assert_eq!(ls.map().translate(lba(8)), Some(pba(10)));
    }

    #[test]
    fn zoned_log_increases_fragmentation_realistically() {
        // Same workload, with and without zones: the zoned log can only
        // have equal or more physical reads (guard-band splits).
        let mk = |zones: Option<u64>| {
            let mut cfg = LsConfig::new(lba(100_000));
            cfg.zone_sectors = zones;
            let mut ls = LogStructured::new(cfg);
            let mut phys_reads = 0usize;
            for i in 0..200u64 {
                ls.apply(&TraceRecord::write(i, lba(i * 64), 48));
            }
            for i in 0..200u64 {
                phys_reads += ls
                    .apply(&TraceRecord::read(1000 + i, lba(i * 64), 48))
                    .len();
            }
            phys_reads
        };
        let flat = mk(None);
        let zoned = mk(Some(256));
        assert!(zoned >= flat, "zoned {zoned} < flat {flat}");
        assert!(zoned > flat, "expected some guard-band splits");
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_run() {
        use crate::config::{CacheConfig, DefragConfig, PrefetchConfig};
        // Exercise every mechanism whose state must survive a snapshot:
        // idle defrag (pending queue + access gates + last timestamp),
        // selective cache, prefetch buffer, fragment tracking.
        let configs = [
            LsConfig::new(lba(100_000)),
            LsConfig::new(lba(100_000)).with_defrag(DefragConfig::idle(5_000)),
            LsConfig::new(lba(100_000)).with_prefetch(PrefetchConfig::default()),
            LsConfig::new(lba(100_000)).with_cache(CacheConfig {
                capacity_bytes: 4 * 512,
            }),
            LsConfig::new(lba(100_000))
                .with_cache(CacheConfig {
                    capacity_bytes: 4 * 512,
                })
                .with_flash_cache(16 * 512),
            LsConfig::new(lba(100_000))
                .with_fragment_tracking()
                .with_zones(64),
        ];
        let trace: Vec<TraceRecord> = (0..120u64)
            .map(|i| {
                let l = lba((i * 37) % 512);
                if i % 3 == 0 {
                    TraceRecord::write(i * 2_000, l, 8)
                } else {
                    TraceRecord::read(i * 2_000, l, 16)
                }
            })
            .collect();
        for config in configs {
            for split in [0, 1, 40, 119, 120] {
                let mut whole = LogStructured::new(config);
                let whole_ios: Vec<PhysIo> = trace.iter().flat_map(|r| whole.apply(r)).collect();

                let mut first = LogStructured::new(config);
                let mut resumed_ios: Vec<PhysIo> =
                    trace[..split].iter().flat_map(|r| first.apply(r)).collect();
                let snap = first.to_snapshot();
                let mut resumed = LogStructured::from_snapshot(snap.clone());
                assert_eq!(resumed.to_snapshot(), snap, "snapshot is stable");
                resumed_ios.extend(trace[split..].iter().flat_map(|r| resumed.apply(r)));

                assert_eq!(resumed_ios, whole_ios, "split {split}");
                assert_eq!(resumed.stats(), whole.stats());
                assert_eq!(resumed.map(), whole.map());
                assert_eq!(resumed.frontier(), whole.frontier());
                assert_eq!(resumed.fragment_tracker(), whole.fragment_tracker());
            }
        }
    }

    #[test]
    fn apply_transition_tracks_apply_behavioural_state_and_head() {
        use crate::config::{CacheConfig, DefragConfig, PrefetchConfig};
        let configs = [
            LsConfig::new(lba(100_000)),
            LsConfig::new(lba(100_000)).with_defrag(DefragConfig::default()),
            LsConfig::new(lba(100_000)).with_defrag(DefragConfig::idle(5_000)),
            LsConfig::new(lba(100_000)).with_prefetch(PrefetchConfig::default()),
            LsConfig::new(lba(100_000)).with_cache(CacheConfig {
                capacity_bytes: 4 * 512,
            }),
            LsConfig::new(lba(100_000))
                .with_fragment_tracking()
                .with_zones(64),
        ];
        let trace: Vec<TraceRecord> = (0..120u64)
            .map(|i| {
                let l = lba((i * 37) % 512);
                if i % 3 == 0 {
                    TraceRecord::write(i * 2_000, l, 8)
                } else {
                    TraceRecord::read(i * 2_000, l, 16)
                }
            })
            .collect();
        for config in configs {
            let mut full = LogStructured::new(config);
            let mut transition = LogStructured::new(config);
            for (i, rec) in trace.iter().enumerate() {
                let ios = full.apply(rec);
                let head = transition.apply_transition(rec);
                assert_eq!(head, ios.last().map(|io| io.end().sector()), "rec {i}");
                assert_eq!(transition.map(), full.map(), "rec {i}");
                assert_eq!(transition.frontier(), full.frontier());
                assert_eq!(transition.cache(), full.cache());
                assert_eq!(transition.prefetch_buffer(), full.prefetch_buffer());
                assert_eq!(transition.pending_defrag(), full.pending_defrag());
            }
        }
    }

    #[test]
    fn stats_count_physical_ops() {
        let mut ls = plain(1000);
        ls.apply(&TraceRecord::write(0, lba(0), 6));
        ls.apply(&TraceRecord::write(1, lba(2), 1));
        ls.apply(&TraceRecord::read(2, lba(0), 6));
        let s = ls.stats();
        assert_eq!(s.phys_writes, 2);
        assert_eq!(s.phys_reads, 3);
        assert_eq!(s.logical_reads, 1);
        assert_eq!(s.logical_writes, 2);
        assert!((s.fragmented_read_rate() - 1.0).abs() < 1e-12);
    }
}
