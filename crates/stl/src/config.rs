//! Configuration of the log-structured layer and its mechanisms.

use serde::{Deserialize, Serialize};
use smrseek_trace::{stream, Lba, Pba, TraceRecord, KIB, MIB};

/// When opportunistic defragmentation performs its rewrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefragTiming {
    /// Rewrite immediately after the fragmented read (Alg. 1 as printed).
    Immediate,
    /// Queue candidates and rewrite them as one batch when the workload
    /// goes idle for at least `min_gap_us` microseconds — §IV-A's
    /// "restricting the times when defragmentation is performed" taken
    /// further: a batch pays the seek to the frontier once instead of
    /// once per range.
    Idle {
        /// Minimum inter-arrival gap treated as idle.
        min_gap_us: u64,
    },
}

/// Configuration of **opportunistic defragmentation** (§IV-A, Alg. 1).
///
/// After serving a fragmented read the layer may rewrite the just-read
/// range contiguously at the write frontier. The paper notes the overheads
/// "can be reduced by restricting the times when defragmentation is
/// performed, specifically by defragmenting only regions with N or more
/// fragments, or waiting until a fragmented range has been accessed k or
/// more times" — these are `min_fragments` and `min_accesses`;
/// [`DefragTiming::Idle`] additionally defers the rewrites themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefragConfig {
    /// Rewrite only reads split into at least this many fragments
    /// (`N`; 2 = any fragmented read, matching Alg. 1).
    pub min_fragments: usize,
    /// Rewrite only ranges whose fragmented reads have been seen at least
    /// this many times (`k`; 1 = defragment on first fragmented read).
    pub min_accesses: u64,
    /// When the rewrites happen.
    pub timing: DefragTiming,
}

impl Default for DefragConfig {
    fn default() -> Self {
        DefragConfig {
            min_fragments: 2,
            min_accesses: 1,
            timing: DefragTiming::Immediate,
        }
    }
}

impl DefragConfig {
    /// Alg. 1 defaults with idle-batched rewrites.
    pub fn idle(min_gap_us: u64) -> Self {
        DefragConfig {
            timing: DefragTiming::Idle { min_gap_us },
            ..DefragConfig::default()
        }
    }
}

/// Configuration of **translation-aware look-ahead-behind prefetching**
/// (§IV-B, Alg. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Sectors fetched physically *before* each fragment (look-behind).
    pub behind_sectors: u64,
    /// Sectors fetched physically *after* each fragment (look-ahead).
    pub ahead_sectors: u64,
    /// Capacity of the drive prefetch buffer, in bytes.
    pub buffer_bytes: u64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        // 256 KB each way matches the window the paper uses to define
        // mis-ordered writes (Fig 8). The buffer is deliberately small —
        // look-ahead-behind data lives in the drive's transient track
        // buffer, not a managed cache; a large value here would turn
        // prefetching into a second selective cache and mask the
        // distinction the paper draws between the two mechanisms.
        PrefetchConfig {
            behind_sectors: 256 * KIB / 512,
            ahead_sectors: 256 * KIB / 512,
            buffer_bytes: 4 * MIB,
        }
    }
}

/// Configuration of **translation-aware selective caching** (§IV-C,
/// Alg. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity of the fragment cache, in bytes. The paper's evaluation
    /// fixes this at 64 MB.
    pub capacity_bytes: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 * MIB,
        }
    }
}

/// Full configuration of a [`crate::LogStructured`] layer.
///
/// # Example
///
/// ```
/// use smrseek_stl::{CacheConfig, LsConfig};
/// use smrseek_trace::{Lba, TraceRecord};
///
/// let trace = [TraceRecord::write(0, Lba::new(10_000), 8)];
/// let config = LsConfig::for_trace(&trace).with_cache(CacheConfig::default());
/// assert!(config.frontier_start.sector() > 10_000);
/// assert!(config.cache.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LsConfig {
    /// First sector of the log: the write frontier's initial position.
    /// Must lie above every LBA in the trace so identity-placed pre-trace
    /// data is never overwritten (§III).
    pub frontier_start: Pba,
    /// Opportunistic defragmentation, if enabled.
    pub defrag: Option<DefragConfig>,
    /// Look-ahead-behind prefetching, if enabled.
    pub prefetch: Option<PrefetchConfig>,
    /// Selective caching, if enabled.
    pub cache: Option<CacheConfig>,
    /// Capacity of a simulated flash tier behind the selective cache, in
    /// bytes. RAM evictions demote their victims here instead of dropping
    /// them; flash hits promote back (see `smrseek_cache::TieredCache`).
    /// Meaningless without `cache`.
    pub flash_cache_bytes: Option<u64>,
    /// Record per-read fragment counts and per-fragment access statistics
    /// (needed by the Fig 5 / Fig 10 experiments; off by default to keep
    /// memory flat on huge traces).
    pub track_fragments: bool,
    /// Zone size in sectors for ZBC-style zoned backing (extension beyond
    /// the paper's idealized infinite frontier): the last sector of every
    /// zone is a guard band the log skips, so appends split at zone
    /// boundaries and physical contiguity breaks there. `None` models the
    /// paper's continuous infinite disk.
    pub zone_sectors: Option<u64>,
}

impl LsConfig {
    /// Plain log-structured translation with the frontier at
    /// `frontier_start` (sector number taken from an [`Lba`] bound since
    /// it is derived from the trace's logical space).
    pub fn new(frontier_start: Lba) -> Self {
        LsConfig {
            frontier_start: Pba::new(frontier_start.sector()),
            defrag: None,
            prefetch: None,
            cache: None,
            flash_cache_bytes: None,
            track_fragments: false,
            zone_sectors: None,
        }
    }

    /// Derives a configuration from a trace: the frontier starts at the
    /// first 1 MiB boundary above the highest LBA in the trace.
    pub fn for_trace(records: &[TraceRecord]) -> Self {
        Self::above_sector(stream::max_lba(records).map_or(0, |l| l.sector() + 1))
    }

    /// Derives a configuration from a known logical-space bound: the
    /// frontier starts at the first 1 MiB boundary at or above `top`
    /// sectors (`top` = one past the highest sector the workload touches).
    ///
    /// This is the streaming-friendly alternative to [`LsConfig::for_trace`]:
    /// when the trace arrives as an iterator the bound comes from a header,
    /// a prior characterization pass, or the generator — not from scanning
    /// a materialized slice.
    pub fn above_sector(top: u64) -> Self {
        let align = MIB / 512;
        let frontier = top.div_ceil(align) * align;
        Self::new(Lba::new(frontier))
    }

    /// Enables opportunistic defragmentation.
    pub fn with_defrag(mut self, defrag: DefragConfig) -> Self {
        self.defrag = Some(defrag);
        self
    }

    /// Enables look-ahead-behind prefetching.
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = Some(prefetch);
        self
    }

    /// Enables selective caching.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Backs the selective cache with a simulated flash tier of `bytes`
    /// bytes (no effect unless [`with_cache`](Self::with_cache) is also
    /// set).
    pub fn with_flash_cache(mut self, bytes: u64) -> Self {
        self.flash_cache_bytes = Some(bytes);
        self
    }

    /// Enables fragment statistics tracking.
    pub fn with_fragment_tracking(mut self) -> Self {
        self.track_fragments = true;
        self
    }

    /// Backs the log with zones of `zone_sectors` sectors (ZBC-style; the
    /// last sector of each zone is a guard band).
    ///
    /// # Panics
    ///
    /// Panics if `zone_sectors < 2` (a zone needs at least one data
    /// sector and its guard).
    pub fn with_zones(mut self, zone_sectors: u64) -> Self {
        assert!(zone_sectors >= 2, "zones need at least two sectors");
        self.zone_sectors = Some(zone_sectors);
        self
    }
}

impl Default for LsConfig {
    fn default() -> Self {
        // A 1 TiB logical space below the log by default.
        LsConfig::new(Lba::new(2 * 1024 * 1024 * 1024))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let d = DefragConfig::default();
        assert_eq!(d.min_fragments, 2);
        assert_eq!(d.min_accesses, 1);
        let p = PrefetchConfig::default();
        assert_eq!(p.behind_sectors, 512);
        assert_eq!(p.ahead_sectors, 512);
        let c = CacheConfig::default();
        assert_eq!(c.capacity_bytes, 64 * MIB);
    }

    #[test]
    fn for_trace_aligns_above_max_lba() {
        let trace = [
            TraceRecord::write(0, Lba::new(5000), 8),
            TraceRecord::read(1, Lba::new(10_000), 16),
        ];
        let cfg = LsConfig::for_trace(&trace);
        assert!(cfg.frontier_start.sector() >= 10_016);
        assert_eq!(cfg.frontier_start.sector() % 2048, 0);
    }

    #[test]
    fn for_trace_empty() {
        let cfg = LsConfig::for_trace(&[]);
        assert_eq!(cfg.frontier_start, Pba::new(0));
    }

    #[test]
    fn above_sector_matches_for_trace() {
        let trace = [
            TraceRecord::write(0, Lba::new(5000), 8),
            TraceRecord::read(1, Lba::new(10_000), 16),
        ];
        let top = stream::max_lba(&trace).map_or(0, |l| l.sector() + 1);
        assert_eq!(
            LsConfig::above_sector(top).frontier_start,
            LsConfig::for_trace(&trace).frontier_start
        );
        assert_eq!(LsConfig::above_sector(0).frontier_start, Pba::new(0));
        assert_eq!(LsConfig::above_sector(1).frontier_start, Pba::new(2048));
        assert_eq!(LsConfig::above_sector(2048).frontier_start, Pba::new(2048));
    }

    #[test]
    fn builder_chains() {
        let cfg = LsConfig::default()
            .with_defrag(DefragConfig::default())
            .with_prefetch(PrefetchConfig::default())
            .with_cache(CacheConfig::default())
            .with_fragment_tracking();
        assert!(cfg.defrag.is_some());
        assert!(cfg.prefetch.is_some());
        assert!(cfg.cache.is_some());
        assert!(cfg.track_fragments);
    }
}
