//! Fragment statistics: dynamic-fragmentation CDFs (Fig 5) and fragment
//! popularity / cumulative cache size (Fig 10).

use serde::{Deserialize, Serialize};
use smrseek_trace::{Pba, SECTOR_SIZE};
use std::collections::HashMap;

/// Accumulates per-read fragment counts and per-fragment access counts
/// while a log-structured layer serves reads.
///
/// A *fragment* is one physically-contiguous piece of a fragmented read,
/// identified by its starting physical sector. Because the log never reuses
/// physical sectors (infinite-disk model), a start sector uniquely
/// identifies the data revision it holds.
///
/// # Example
///
/// ```
/// use smrseek_stl::FragmentAccessTracker;
/// use smrseek_trace::Pba;
///
/// let mut t = FragmentAccessTracker::new();
/// t.record_read(&[(Pba::new(100), 8), (Pba::new(5000), 8)]); // 2 fragments
/// t.record_read(&[(Pba::new(100), 8), (Pba::new(5000), 8)]);
/// assert_eq!(t.fragmented_read_count(), 2);
/// let pop = t.popularity();
/// assert_eq!(pop[0].access_count, 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FragmentAccessTracker {
    /// Fragment count of each fragmented read, in trace order.
    per_read_fragments: Vec<u32>,
    /// pba start sector -> (access count, sectors)
    fragments: HashMap<u64, (u64, u64)>,
}

/// One fragment's aggregate statistics, as plotted in Fig 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentPopularity {
    /// Identifying physical start sector.
    pub pba: Pba,
    /// How many fragmented reads touched this fragment.
    pub access_count: u64,
    /// Fragment size in bytes (what caching it would cost).
    pub bytes: u64,
}

impl FragmentAccessTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        FragmentAccessTracker::default()
    }

    /// Records one *fragmented* read (two or more physical runs). Reads
    /// with a single run should not be recorded — Fig 5 and Fig 10 both
    /// consider fragmented reads only.
    pub fn record_read(&mut self, runs: &[(Pba, u64)]) {
        debug_assert!(runs.len() >= 2, "only fragmented reads are recorded");
        self.per_read_fragments
            .push(u32::try_from(runs.len()).unwrap_or(u32::MAX));
        for &(pba, sectors) in runs {
            let entry = self.fragments.entry(pba.sector()).or_insert((0, sectors));
            entry.0 += 1;
            entry.1 = entry.1.max(sectors);
        }
    }

    /// Appends another tracker's observations, as if `other`'s reads had
    /// been recorded immediately after this tracker's. Per-read fragment
    /// counts concatenate in that order; per-fragment access counts add
    /// (fragment identity is the physical start sector, which the
    /// infinite-disk log never reuses, so the same key in both trackers is
    /// the same data revision).
    pub fn merge(&mut self, other: &FragmentAccessTracker) {
        self.per_read_fragments
            .extend_from_slice(&other.per_read_fragments);
        for (&pba, &(count, sectors)) in &other.fragments {
            let entry = self.fragments.entry(pba).or_insert((0, sectors));
            entry.0 += count;
            entry.1 = entry.1.max(sectors);
        }
    }

    /// Number of fragmented reads recorded.
    pub fn fragmented_read_count(&self) -> usize {
        self.per_read_fragments.len()
    }

    /// Number of distinct fragments seen.
    pub fn distinct_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// Fragment counts of the recorded fragmented reads, in trace order —
    /// the raw samples of Fig 5's CDFs.
    pub fn per_read_fragment_counts(&self) -> &[u32] {
        &self.per_read_fragments
    }

    /// Fragments sorted by access count, most popular first (ties broken
    /// by physical address for determinism) — the solid curve of Fig 10.
    pub fn popularity(&self) -> Vec<FragmentPopularity> {
        let mut out: Vec<FragmentPopularity> = self
            .fragments
            .iter()
            .map(|(&pba, &(count, sectors))| FragmentPopularity {
                pba: Pba::new(pba),
                access_count: count,
                bytes: sectors * SECTOR_SIZE,
            })
            .collect();
        out.sort_by(|a, b| b.access_count.cmp(&a.access_count).then(a.pba.cmp(&b.pba)));
        out
    }

    /// The dashed curve of Fig 10: walking fragments from most to least
    /// popular, the cumulative bytes of cache needed to hold them. Entry
    /// `i` is the cache size covering the `i+1` most popular fragments.
    pub fn cumulative_cache_bytes(&self) -> Vec<u64> {
        let mut cum = 0u64;
        self.popularity()
            .iter()
            .map(|f| {
                cum += f.bytes;
                cum
            })
            .collect()
    }

    /// Bytes of cache needed to capture `fraction` (in `[0, 1]`) of all
    /// fragment accesses, serving the most popular fragments first.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn cache_bytes_for_access_fraction(&self, fraction: f64) -> u64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let total: u64 = self.fragments.values().map(|&(c, _)| c).sum();
        let target = (total as f64 * fraction).ceil() as u64;
        let mut covered = 0u64;
        let mut bytes = 0u64;
        for f in self.popularity() {
            if covered >= target {
                break;
            }
            covered += f.access_count;
            bytes += f.bytes;
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pba(s: u64) -> Pba {
        Pba::new(s)
    }

    #[test]
    fn empty_tracker() {
        let t = FragmentAccessTracker::new();
        assert_eq!(t.fragmented_read_count(), 0);
        assert_eq!(t.distinct_fragments(), 0);
        assert!(t.popularity().is_empty());
        assert!(t.cumulative_cache_bytes().is_empty());
        assert_eq!(t.cache_bytes_for_access_fraction(0.5), 0);
    }

    #[test]
    fn popularity_sorted_desc() {
        let mut t = FragmentAccessTracker::new();
        t.record_read(&[(pba(10), 1), (pba(20), 2)]);
        t.record_read(&[(pba(10), 1), (pba(30), 4)]);
        t.record_read(&[(pba(10), 1), (pba(30), 4)]);
        let pop = t.popularity();
        assert_eq!(pop.len(), 3);
        assert_eq!(pop[0].pba, pba(10));
        assert_eq!(pop[0].access_count, 3);
        assert_eq!(pop[1].pba, pba(30));
        assert_eq!(pop[1].access_count, 2);
        assert_eq!(pop[2].access_count, 1);
        assert_eq!(pop[1].bytes, 4 * SECTOR_SIZE);
    }

    #[test]
    fn per_read_counts_in_order() {
        let mut t = FragmentAccessTracker::new();
        t.record_read(&[(pba(0), 1), (pba(9), 1)]);
        t.record_read(&[(pba(0), 1), (pba(9), 1), (pba(99), 1)]);
        assert_eq!(t.per_read_fragment_counts(), &[2, 3]);
        assert_eq!(t.fragmented_read_count(), 2);
        assert_eq!(t.distinct_fragments(), 3);
    }

    #[test]
    fn merge_equals_recording_the_whole_sequence() {
        let reads: Vec<Vec<(Pba, u64)>> = vec![
            vec![(pba(0), 2), (pba(10), 4)],
            vec![(pba(0), 2), (pba(20), 8)],
            vec![(pba(10), 4), (pba(20), 8), (pba(99), 1)],
        ];
        for split in 0..=reads.len() {
            let mut whole = FragmentAccessTracker::new();
            for r in &reads {
                whole.record_read(r);
            }
            let mut first = FragmentAccessTracker::new();
            for r in &reads[..split] {
                first.record_read(r);
            }
            let mut second = FragmentAccessTracker::new();
            for r in &reads[split..] {
                second.record_read(r);
            }
            first.merge(&second);
            assert_eq!(first, whole, "split at {split}");
        }
    }

    #[test]
    fn cumulative_cache_curve_monotone() {
        let mut t = FragmentAccessTracker::new();
        t.record_read(&[(pba(0), 2), (pba(10), 4)]);
        t.record_read(&[(pba(0), 2), (pba(20), 8)]);
        let curve = t.cumulative_cache_bytes();
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*curve.last().unwrap(), (2 + 4 + 8) * SECTOR_SIZE);
    }

    #[test]
    fn cache_fraction_prefers_popular() {
        let mut t = FragmentAccessTracker::new();
        // Fragment 0 is hot (3 accesses, small); fragment 100 cold (1, big).
        for _ in 0..3 {
            t.record_read(&[(pba(0), 1), (pba(50), 1)]);
        }
        t.record_read(&[(pba(100), 1000), (pba(5000), 1)]);
        let hot_bytes = t.cache_bytes_for_access_fraction(0.3);
        // 30% of 8 accesses = 3 -> the single hottest fragment suffices.
        assert_eq!(hot_bytes, SECTOR_SIZE);
        let all = t.cache_bytes_for_access_fraction(1.0);
        assert_eq!(all, (1 + 1 + 1000 + 1) * SECTOR_SIZE);
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn fraction_validated() {
        FragmentAccessTracker::new().cache_bytes_for_access_fraction(1.5);
    }
}
