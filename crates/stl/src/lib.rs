//! Shingle translation layers (STLs) — the primary contribution of
//! *"Minimizing Read Seeks for SMR Disk"* (IISWC 2018).
//!
//! A translation layer turns each logical block operation into the physical
//! operations actually performed by the medium. Two base layers implement
//! the paper's disk model (Section II):
//!
//! * [`NoLs`] — conventional update-in-place translation (PBA = LBA); the
//!   baseline whose seek counts define a seek amplification factor of 1.
//! * [`LogStructured`] — full-extent-map log-structured translation on an
//!   infinite disk: every write goes to an advancing write frontier; reads
//!   of never-written data fall through to their identity location.
//!
//! Three seek-reduction mechanisms (Section IV) compose onto the
//! log-structured layer via [`LsConfig`]:
//!
//! * **opportunistic defragmentation** ([`DefragConfig`], Alg. 1) —
//!   rewrite just-read fragmented ranges contiguously at the frontier;
//! * **translation-aware look-ahead-behind prefetching**
//!   ([`PrefetchConfig`], Alg. 2) — read physically around each fragment
//!   into a drive buffer to absorb mis-ordered-write patterns;
//! * **translation-aware selective caching** ([`CacheConfig`], Alg. 3) —
//!   LRU-cache only the fragments of fragmented reads (64 MB in the
//!   paper's evaluation).
//!
//! Supporting analyses: [`fragstats`] (dynamic-fragmentation CDFs, Fig 5;
//! fragment popularity and cumulative cache size, Fig 10) and [`misorder`]
//! (mis-ordered writes within a 256 KB window, Fig 8). [`media_cache`]
//! models the simple media-cache STL that shipped drives use (Section II),
//! for cleaning-overhead comparisons.
//!
//! # Example
//!
//! ```
//! use smrseek_stl::{LogStructured, LsConfig, NoLs, TranslationLayer};
//! use smrseek_trace::{Lba, TraceRecord};
//!
//! let trace = [
//!     TraceRecord::write(0, Lba::new(0), 8),     // file written...
//!     TraceRecord::write(1, Lba::new(2), 2),     // ...then partially updated
//!     TraceRecord::read(2, Lba::new(0), 8),      // ...then read back
//! ];
//! let mut ls = LogStructured::new(LsConfig::new(Lba::new(1 << 20)));
//! let mut phys = Vec::new();
//! for rec in &trace {
//!     phys.extend(ls.apply(rec));
//! }
//! // The read is split into three physical pieces by the update.
//! assert_eq!(phys.len(), 2 + 3);
//! ```

#![warn(missing_docs)]
pub mod cleaner;
pub mod config;
pub mod fragstats;
pub mod layer;
pub mod log;
pub mod media_cache;
pub mod misorder;
pub mod stats;

pub use cleaner::{CleanerConfig, CleanerPolicy, CleanerStats, CleaningLog};
pub use config::{CacheConfig, DefragConfig, DefragTiming, LsConfig, PrefetchConfig};
pub use fragstats::FragmentAccessTracker;
pub use layer::{NoLs, TranslationLayer};
pub use log::{LogStructured, LsSnapshot};
pub use media_cache::{MediaCacheConfig, MediaCacheStl};
pub use misorder::{count_misordered_writes, MISORDER_WINDOW_BYTES};
pub use stats::LsStats;
