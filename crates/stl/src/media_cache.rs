//! The media-cache translation layer used by shipped drive-managed SMR
//! devices (Section II).
//!
//! *"Existing translation layers for SMR have typically been very simple,
//! logging updates to a reserved region of the disk (the media cache), and
//! then merging them back to data zones, where they are stored in logical
//! order... As a result almost all data is stored in LBA order, resulting
//! in little or no read seek amplification, but at the price of high
//! cleaning overhead."*
//!
//! This layer provides the contrast case for the paper's argument: its read
//! seek behaviour is nearly conventional, but every media-cache fill
//! triggers read-modify-write merges whose cost the log-structured layer
//! avoids entirely.

use crate::layer::TranslationLayer;
use serde::{Deserialize, Serialize};
use smrseek_disk::PhysIo;
use smrseek_extent::{ExtentMap, Segment};
use smrseek_trace::{Lba, OpKind, Pba, TraceRecord, MIB};
use std::collections::BTreeSet;

/// Configuration of the media-cache layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaCacheConfig {
    /// First sector of the reserved media-cache region; must exceed every
    /// LBA of the workload.
    pub cache_start: Pba,
    /// Media-cache capacity in sectors; reaching it triggers a merge.
    pub capacity_sectors: u64,
    /// Data-zone size in sectors: merges rewrite whole zones in LBA order.
    pub zone_sectors: u64,
}

impl MediaCacheConfig {
    /// A typical small configuration: merge zones of 16 MiB, cache of
    /// `capacity_sectors`, cache region starting at `cache_start`.
    pub fn new(cache_start: Pba, capacity_sectors: u64) -> Self {
        MediaCacheConfig {
            cache_start,
            capacity_sectors,
            zone_sectors: 16 * MIB / 512,
        }
    }
}

/// Counters for the media-cache layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaCacheStats {
    /// Merge episodes (cache fills).
    pub merges: u64,
    /// Data zones rewritten across all merges.
    pub zones_rewritten: u64,
    /// Sectors written by the host.
    pub host_write_sectors: u64,
    /// Sectors written to the medium (cache appends + zone rewrites).
    pub media_write_sectors: u64,
}

impl MediaCacheStats {
    /// Write amplification factor: media writes per host write.
    pub fn waf(&self) -> f64 {
        if self.host_write_sectors == 0 {
            0.0
        } else {
            self.media_write_sectors as f64 / self.host_write_sectors as f64
        }
    }
}

/// The media-cache translation layer.
///
/// # Example
///
/// ```
/// use smrseek_stl::{MediaCacheConfig, MediaCacheStl, TranslationLayer};
/// use smrseek_trace::{Lba, Pba, TraceRecord};
///
/// let cfg = MediaCacheConfig::new(Pba::new(1 << 30), 1024);
/// let mut stl = MediaCacheStl::new(cfg);
/// stl.apply(&TraceRecord::write(0, Lba::new(0), 8));
/// let r = stl.apply(&TraceRecord::read(1, Lba::new(0), 8));
/// assert_eq!(r[0].pba, Pba::new(1 << 30)); // still in the media cache
/// ```
#[derive(Debug, Clone)]
pub struct MediaCacheStl {
    config: MediaCacheConfig,
    map: ExtentMap,
    cache_frontier: Pba,
    cache_used: u64,
    stats: MediaCacheStats,
    /// When closed, capacity-triggered merges are deferred (the cache runs
    /// over budget) until the gate reopens — the media-cache analogue of
    /// the policy engine's defrag gate: merge work is shifted out of hot
    /// phases. Transient; defaults to open.
    merge_gate: bool,
}

impl MediaCacheStl {
    /// Creates a layer from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_sectors` or `zone_sectors` is zero.
    pub fn new(config: MediaCacheConfig) -> Self {
        assert!(config.capacity_sectors > 0, "cache must be non-empty");
        assert!(config.zone_sectors > 0, "zones must be non-empty");
        MediaCacheStl {
            cache_frontier: config.cache_start,
            map: ExtentMap::new(),
            cache_used: 0,
            stats: MediaCacheStats::default(),
            merge_gate: true,
            config,
        }
    }

    /// Opens or closes the merge gate. While closed, cache fills no longer
    /// trigger merges (the cache runs over budget); reopening does not
    /// merge by itself — the next capacity-checked write does, or call
    /// [`merge`](Self::merge) explicitly.
    pub fn set_merge_gate(&mut self, open: bool) {
        self.merge_gate = open;
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> MediaCacheStats {
        self.stats
    }

    /// Sectors currently held in the media cache.
    pub fn cache_used(&self) -> u64 {
        self.cache_used
    }

    /// Merges every dirty zone back to its identity location, in LBA
    /// order, and resets the cache. Returns the physical operations of the
    /// merge (zone read + cached-extent reads + sequential zone write, per
    /// zone).
    pub fn merge(&mut self) -> Vec<PhysIo> {
        let zones: BTreeSet<u64> = self
            .map
            .iter()
            .flat_map(|e| {
                let first = e.lba.sector() / self.config.zone_sectors;
                let last = (e.lba_end().sector() - 1) / self.config.zone_sectors;
                first..=last
            })
            .collect();
        let mut phys = Vec::new();
        for zone in zones {
            let zone_start = zone * self.config.zone_sectors;
            // Read the old zone contents...
            phys.push(PhysIo::read(Pba::new(zone_start), self.config.zone_sectors));
            // ...and the cached updates belonging to it...
            for seg in self
                .map
                .lookup(Lba::new(zone_start), self.config.zone_sectors)
            {
                if let Segment::Mapped(e) = seg {
                    phys.push(PhysIo::read(e.pba, e.sectors));
                }
            }
            // ...then rewrite the zone sequentially in place.
            phys.push(PhysIo::write(
                Pba::new(zone_start),
                self.config.zone_sectors,
            ));
            self.stats.zones_rewritten += 1;
            self.stats.media_write_sectors += self.config.zone_sectors;
        }
        self.map = ExtentMap::new();
        self.cache_frontier = self.config.cache_start;
        self.cache_used = 0;
        self.stats.merges += 1;
        phys
    }
}

impl TranslationLayer for MediaCacheStl {
    fn apply(&mut self, rec: &TraceRecord) -> Vec<PhysIo> {
        match rec.op {
            OpKind::Write => {
                let sectors = u64::from(rec.sectors);
                let at = self.cache_frontier;
                self.map.insert(rec.lba, sectors, at);
                self.cache_frontier += sectors;
                self.cache_used += sectors;
                self.stats.host_write_sectors += sectors;
                self.stats.media_write_sectors += sectors;
                let mut phys = vec![PhysIo::write(at, sectors)];
                if self.merge_gate && self.cache_used >= self.config.capacity_sectors {
                    phys.extend(self.merge());
                }
                phys
            }
            OpKind::Read => {
                let mut phys: Vec<PhysIo> = Vec::new();
                for seg in self.map.lookup(rec.lba, u64::from(rec.sectors)) {
                    let (start, len) = match seg {
                        Segment::Mapped(e) => (e.pba, e.sectors),
                        Segment::Hole { lba, sectors } => (Pba::new(lba.sector()), sectors),
                    };
                    match phys.last_mut() {
                        Some(last) if last.end() == start => last.sectors += len,
                        _ => phys.push(PhysIo::read(start, len)),
                    }
                }
                phys
            }
        }
    }

    fn name(&self) -> &str {
        "MediaCache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: u64) -> MediaCacheConfig {
        MediaCacheConfig {
            cache_start: Pba::new(1_000_000),
            capacity_sectors: capacity,
            zone_sectors: 100,
        }
    }

    #[test]
    fn writes_log_to_cache_region() {
        let mut stl = MediaCacheStl::new(cfg(1000));
        let a = stl.apply(&TraceRecord::write(0, Lba::new(5), 8));
        let b = stl.apply(&TraceRecord::write(1, Lba::new(500), 8));
        assert_eq!(a, vec![PhysIo::write(Pba::new(1_000_000), 8)]);
        assert_eq!(b, vec![PhysIo::write(Pba::new(1_000_008), 8)]);
        assert_eq!(stl.cache_used(), 16);
    }

    #[test]
    fn reads_mix_cache_and_identity() {
        let mut stl = MediaCacheStl::new(cfg(1000));
        stl.apply(&TraceRecord::write(0, Lba::new(10), 4));
        let r = stl.apply(&TraceRecord::read(1, Lba::new(8), 8));
        assert_eq!(
            r,
            vec![
                PhysIo::read(Pba::new(8), 2),
                PhysIo::read(Pba::new(1_000_000), 4),
                PhysIo::read(Pba::new(14), 2),
            ]
        );
    }

    #[test]
    fn cache_fill_triggers_merge() {
        let mut stl = MediaCacheStl::new(cfg(16));
        stl.apply(&TraceRecord::write(0, Lba::new(10), 8));
        assert_eq!(stl.stats().merges, 0);
        let phys = stl.apply(&TraceRecord::write(1, Lba::new(150), 8));
        // Cache hit capacity: merge of zones 0 and 1 follows the append.
        assert_eq!(stl.stats().merges, 1);
        assert_eq!(stl.stats().zones_rewritten, 2);
        assert_eq!(stl.cache_used(), 0);
        // Append + (zone read, extent read, zone write) x 2.
        assert_eq!(phys.len(), 1 + 3 + 3);
        // After the merge, reads come from identity locations.
        let r = stl.apply(&TraceRecord::read(2, Lba::new(10), 8));
        assert_eq!(r, vec![PhysIo::read(Pba::new(10), 8)]);
    }

    #[test]
    fn merge_spanning_extent_touches_both_zones() {
        let mut stl = MediaCacheStl::new(cfg(1000));
        stl.apply(&TraceRecord::write(0, Lba::new(95), 10)); // zones 0 and 1
        let phys = stl.merge();
        assert_eq!(stl.stats().zones_rewritten, 2);
        let writes: Vec<_> = phys.iter().filter(|p| p.op == OpKind::Write).collect();
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[0].pba, Pba::new(0));
        assert_eq!(writes[1].pba, Pba::new(100));
    }

    #[test]
    fn waf_reflects_merge_cost() {
        let mut stl = MediaCacheStl::new(cfg(8));
        stl.apply(&TraceRecord::write(0, Lba::new(0), 8)); // fills cache -> merge
        let s = stl.stats();
        assert_eq!(s.host_write_sectors, 8);
        // 8 cache sectors + 100-sector zone rewrite.
        assert_eq!(s.media_write_sectors, 108);
        assert!((s.waf() - 13.5).abs() < 1e-9);
    }

    #[test]
    fn name_and_empty_read() {
        let mut stl = MediaCacheStl::new(cfg(100));
        assert_eq!(stl.name(), "MediaCache");
        let r = stl.apply(&TraceRecord::read(0, Lba::new(0), 4));
        assert_eq!(r, vec![PhysIo::read(Pba::new(0), 4)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_capacity_panics() {
        MediaCacheStl::new(cfg(0));
    }

    #[test]
    fn closed_merge_gate_defers_capacity_merges() {
        let mut stl = MediaCacheStl::new(cfg(16));
        stl.set_merge_gate(false);
        stl.apply(&TraceRecord::write(0, Lba::new(10), 8));
        stl.apply(&TraceRecord::write(1, Lba::new(150), 8));
        stl.apply(&TraceRecord::write(2, Lba::new(300), 8));
        assert_eq!(stl.stats().merges, 0, "gate closed: no merge");
        assert_eq!(stl.cache_used(), 24, "cache ran over budget");
        // Reopening lets the next capacity-checked write merge everything.
        stl.set_merge_gate(true);
        let phys = stl.apply(&TraceRecord::write(3, Lba::new(450), 8));
        assert_eq!(stl.stats().merges, 1);
        assert_eq!(stl.stats().zones_rewritten, 4);
        assert_eq!(stl.cache_used(), 0);
        assert!(phys.len() > 1);
    }
}
