//! The translation-layer trait and the conventional (update-in-place)
//! baseline.

use smrseek_disk::PhysIo;
use smrseek_trace::{Pba, TraceRecord};

/// A block translation layer: maps logical trace operations to the physical
/// operations performed by the medium.
///
/// Implementations are stateful (extent maps, caches, write frontiers) and
/// deterministic: the same record sequence always yields the same physical
/// operation sequence.
pub trait TranslationLayer {
    /// Applies one logical operation and returns the physical operations it
    /// caused, in the order the medium performs them.
    fn apply(&mut self, rec: &TraceRecord) -> Vec<PhysIo>;

    /// A short human-readable name for reports ("NoLS", "LS", ...).
    fn name(&self) -> &str;
}

/// Conventional update-in-place translation: every logical operation maps
/// to one physical operation at the identity location (PBA = LBA).
///
/// This is the paper's *NoLS* baseline — the seek counts of a trace under
/// `NoLs` are the denominator of the seek amplification factor.
///
/// # Example
///
/// ```
/// use smrseek_stl::{NoLs, TranslationLayer};
/// use smrseek_trace::{Lba, Pba, TraceRecord};
///
/// let mut layer = NoLs::new();
/// let phys = layer.apply(&TraceRecord::read(0, Lba::new(42), 8));
/// assert_eq!(phys.len(), 1);
/// assert_eq!(phys[0].pba, Pba::new(42));
/// assert_eq!(phys[0].sectors, 8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoLs {
    _priv: (),
}

impl NoLs {
    /// Creates the baseline layer.
    pub fn new() -> Self {
        NoLs::default()
    }
}

impl TranslationLayer for NoLs {
    fn apply(&mut self, rec: &TraceRecord) -> Vec<PhysIo> {
        vec![PhysIo::new(
            rec.op,
            Pba::new(rec.lba.sector()),
            u64::from(rec.sectors),
        )]
    }

    fn name(&self) -> &str {
        "NoLS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::{Lba, OpKind};

    #[test]
    fn identity_translation() {
        let mut layer = NoLs::new();
        let w = layer.apply(&TraceRecord::write(0, Lba::new(100), 16));
        assert_eq!(w, vec![PhysIo::write(Pba::new(100), 16)]);
        let r = layer.apply(&TraceRecord::read(1, Lba::new(100), 16));
        assert_eq!(r, vec![PhysIo::read(Pba::new(100), 16)]);
        assert_eq!(layer.name(), "NoLS");
    }

    #[test]
    fn preserves_op_kind() {
        let mut layer = NoLs::new();
        for op in [OpKind::Read, OpKind::Write] {
            let rec = TraceRecord::new(0, op, Lba::new(5), 1);
            assert_eq!(layer.apply(&rec)[0].op, op);
        }
    }

    #[test]
    fn usable_as_trait_object() {
        let mut layers: Vec<Box<dyn TranslationLayer>> = vec![Box::new(NoLs::new())];
        let phys = layers[0].apply(&TraceRecord::read(0, Lba::new(1), 1));
        assert_eq!(phys.len(), 1);
    }
}
