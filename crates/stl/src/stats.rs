//! Instrumentation counters of the log-structured layer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Counters accumulated by a [`crate::LogStructured`] layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LsStats {
    /// Logical read operations applied.
    pub logical_reads: u64,
    /// Logical write operations applied.
    pub logical_writes: u64,
    /// Logical reads that required more than one physical fragment.
    pub fragmented_reads: u64,
    /// Total physical read operations issued to the medium.
    pub phys_reads: u64,
    /// Total physical write operations issued to the medium.
    pub phys_writes: u64,
    /// Opportunistic-defragmentation rewrites performed.
    pub defrag_rewrites: u64,
    /// Sectors rewritten by defragmentation (its space/bandwidth cost).
    pub defrag_sectors: u64,
    /// Fragments served from the selective cache.
    pub cache_hit_fragments: u64,
    /// Fragments that missed the selective cache and were read from disk.
    pub cache_miss_fragments: u64,
    /// Fragments served from the prefetch buffer.
    pub prefetch_hit_fragments: u64,
    /// Sectors speculatively fetched by look-ahead/look-behind.
    pub prefetched_sectors: u64,
}

impl LsStats {
    /// Fraction of logical reads that were fragmented, in `[0, 1]`.
    pub fn fragmented_read_rate(&self) -> f64 {
        if self.logical_reads == 0 {
            0.0
        } else {
            self.fragmented_reads as f64 / self.logical_reads as f64
        }
    }

    /// Folds another run's counters into this one. Every field is a pure
    /// event count, so merging the stats of two disjoint record ranges
    /// (each replayed from the correct starting layer state) equals
    /// counting the concatenated range.
    pub fn merge(&mut self, other: &LsStats) {
        self.logical_reads += other.logical_reads;
        self.logical_writes += other.logical_writes;
        self.fragmented_reads += other.fragmented_reads;
        self.phys_reads += other.phys_reads;
        self.phys_writes += other.phys_writes;
        self.defrag_rewrites += other.defrag_rewrites;
        self.defrag_sectors += other.defrag_sectors;
        self.cache_hit_fragments += other.cache_hit_fragments;
        self.cache_miss_fragments += other.cache_miss_fragments;
        self.prefetch_hit_fragments += other.prefetch_hit_fragments;
        self.prefetched_sectors += other.prefetched_sectors;
    }

    /// Selective-cache hit rate over fragment lookups, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hit_fragments + self.cache_miss_fragments;
        if total == 0 {
            0.0
        } else {
            self.cache_hit_fragments as f64 / total as f64
        }
    }
}

impl fmt::Display for LsStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads ({} fragmented) / {} writes; {} defrag rewrites; cache {}/{} hits; {} prefetch hits",
            self.logical_reads,
            self.fragmented_reads,
            self.logical_writes,
            self.defrag_rewrites,
            self.cache_hit_fragments,
            self.cache_hit_fragments + self.cache_miss_fragments,
            self.prefetch_hit_fragments,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero() {
        let s = LsStats::default();
        assert_eq!(s.fragmented_read_rate(), 0.0);
        assert_eq!(s.cache_hit_rate(), 0.0);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = LsStats {
            logical_reads: 1,
            logical_writes: 2,
            fragmented_reads: 3,
            phys_reads: 4,
            phys_writes: 5,
            defrag_rewrites: 6,
            defrag_sectors: 7,
            cache_hit_fragments: 8,
            cache_miss_fragments: 9,
            prefetch_hit_fragments: 10,
            prefetched_sectors: 11,
        };
        let b = LsStats {
            logical_reads: 100,
            ..a
        };
        a.merge(&b);
        assert_eq!(a.logical_reads, 101);
        assert_eq!(a.logical_writes, 4);
        assert_eq!(a.prefetched_sectors, 22);
        assert_eq!(a.cache_miss_fragments, 18);
    }

    #[test]
    fn rates_compute() {
        let s = LsStats {
            logical_reads: 10,
            fragmented_reads: 4,
            cache_hit_fragments: 3,
            cache_miss_fragments: 1,
            ..LsStats::default()
        };
        assert!((s.fragmented_read_rate() - 0.4).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!(s.to_string().contains("4 fragmented"));
    }
}
