//! Mis-ordered write detection (Fig 8).
//!
//! §IV-B: *"we measure mis-ordered writes, writes with LBAs sequentially
//! following a write in the near future ('near future' being defined as
//! within the next 256 KB of write operations)"*. A mis-ordered write lands
//! in the log physically **before** the write it logically follows, so a
//! later in-LBA-order read must "back up", costing a missed rotation on a
//! real drive.

use smrseek_trace::{OpKind, TraceRecord, KIB};
use std::collections::HashMap;

/// The paper's "near future" window: 256 KB of subsequent write volume.
pub const MISORDER_WINDOW_BYTES: u64 = 256 * KIB;

/// Counts mis-ordered writes in a trace: writes `A` for which some later
/// write `B`, within `window_bytes` of written volume after `A`, satisfies
/// `B.end() == A.lba` (i.e. `A` logically follows `B` but was logged ahead
/// of it).
///
/// Returns `(misordered, total_writes)`.
///
/// # Example
///
/// ```
/// use smrseek_stl::{count_misordered_writes, MISORDER_WINDOW_BYTES};
/// use smrseek_trace::{Lba, TraceRecord};
///
/// // Descending writes: each one logically follows the next.
/// let trace = vec![
///     TraceRecord::write(0, Lba::new(16), 8),
///     TraceRecord::write(1, Lba::new(8), 8),
///     TraceRecord::write(2, Lba::new(0), 8),
/// ];
/// let (mis, total) = count_misordered_writes(&trace, MISORDER_WINDOW_BYTES);
/// assert_eq!((mis, total), (2, 3));
/// ```
pub fn count_misordered_writes(records: &[TraceRecord], window_bytes: u64) -> (u64, u64) {
    let writes: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| r.op == OpKind::Write && r.sectors > 0)
        .collect();
    let total = writes.len() as u64;
    let mut misordered = 0u64;

    // Sliding window: ends[e] = number of writes currently in the window
    // whose end() == e. For each write A (scanning backward from the end of
    // the window), check ends[A.lba].
    //
    // Implemented forward with a two-pointer window over `writes`:
    // for each i, the window is writes[i+1..j) where the cumulative bytes of
    // writes[i+1..j) stays <= window_bytes.
    let mut ends: HashMap<u64, u32> = HashMap::new();
    let mut j = 0usize; // exclusive end of window
    let mut window_volume = 0u64;

    for i in 0..writes.len() {
        // Ensure the window starts after i.
        if j <= i {
            j = i + 1;
            window_volume = 0;
            ends.clear();
        }
        // Grow the window while volume fits.
        while j < writes.len() && window_volume + writes[j].len_bytes() <= window_bytes {
            *ends.entry(writes[j].end().sector()).or_insert(0) += 1;
            window_volume += writes[j].len_bytes();
            j += 1;
        }
        if ends.get(&writes[i].lba.sector()).copied().unwrap_or(0) > 0 {
            misordered += 1;
        }
        // Slide: drop writes[i + 1] from the window before the next step.
        if j > i + 1 {
            let leaving = writes[i + 1];
            let e = leaving.end().sector();
            if let Some(c) = ends.get_mut(&e) {
                *c -= 1;
                if *c == 0 {
                    ends.remove(&e);
                }
            }
            window_volume -= leaving.len_bytes();
        }
    }
    (misordered, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::Lba;

    fn w(t: u64, lba: u64, sectors: u32) -> TraceRecord {
        TraceRecord::write(t, Lba::new(lba), sectors)
    }

    fn r(t: u64, lba: u64, sectors: u32) -> TraceRecord {
        TraceRecord::read(t, Lba::new(lba), sectors)
    }

    #[test]
    fn ascending_writes_are_ordered() {
        let trace = vec![w(0, 0, 8), w(1, 8, 8), w(2, 16, 8)];
        assert_eq!(
            count_misordered_writes(&trace, MISORDER_WINDOW_BYTES),
            (0, 3)
        );
    }

    #[test]
    fn descending_writes_are_misordered() {
        // Fig 7a's pattern: sequential ranges written in descending order.
        let trace = vec![w(0, 16, 8), w(1, 8, 8), w(2, 0, 8)];
        assert_eq!(
            count_misordered_writes(&trace, MISORDER_WINDOW_BYTES),
            (2, 3)
        );
    }

    #[test]
    fn window_limits_lookahead() {
        // B follows A logically but only after > window bytes of writes.
        let trace = vec![
            w(0, 8, 8),   // A: would be misordered if B were near
            w(1, 100, 8), // 4 KiB filler
            w(2, 0, 8),   // B: A.lba == B.end()
        ];
        // Window of 4 KiB: only the filler fits; B is outside.
        assert_eq!(count_misordered_writes(&trace, 4 * KIB), (0, 3));
        // Window of 8 KiB: B is visible.
        assert_eq!(count_misordered_writes(&trace, 8 * KIB), (1, 3));
    }

    #[test]
    fn reads_are_ignored() {
        let trace = vec![w(0, 8, 8), r(1, 0, 8), w(2, 0, 8)];
        assert_eq!(
            count_misordered_writes(&trace, MISORDER_WINDOW_BYTES),
            (1, 2)
        );
    }

    #[test]
    fn interleaved_streams_partially_misordered() {
        // Two interleaved ascending streams do not mis-order each other.
        let trace = vec![
            w(0, 0, 8),
            w(1, 1000, 8),
            w(2, 8, 8),
            w(3, 1008, 8),
            w(4, 16, 8),
            w(5, 1016, 8),
        ];
        assert_eq!(
            count_misordered_writes(&trace, MISORDER_WINDOW_BYTES),
            (0, 6)
        );
    }

    #[test]
    fn chunked_descending_ascending_within() {
        // Fig 7a: ascending within chunks, chunks descending.
        let trace = vec![
            w(0, 16, 8),
            w(1, 24, 8), // chunk [16,32) ascending
            w(2, 0, 8),
            w(3, 8, 8), // chunk [0,16) ascending; w(3).end==16==first chunk start
        ];
        // w(3) is not misordered (nothing after it); w(2) ordered (w(3) is
        // ahead logically); w(0)? only misordered if a later write ends at 16:
        // w(3) ends at 16 -> w(0) IS misordered.
        assert_eq!(
            count_misordered_writes(&trace, MISORDER_WINDOW_BYTES),
            (1, 4)
        );
    }

    #[test]
    fn empty_and_read_only() {
        assert_eq!(count_misordered_writes(&[], MISORDER_WINDOW_BYTES), (0, 0));
        let trace = vec![r(0, 0, 8)];
        assert_eq!(
            count_misordered_writes(&trace, MISORDER_WINDOW_BYTES),
            (0, 0)
        );
    }

    #[test]
    fn duplicate_followers_counted_once_per_a() {
        let trace = vec![w(0, 8, 8), w(1, 0, 8), w(2, 0, 8)];
        // A=w(0) has two later writes ending at 8; A counts once.
        assert_eq!(
            count_misordered_writes(&trace, MISORDER_WINDOW_BYTES),
            (1, 3)
        );
    }
}
