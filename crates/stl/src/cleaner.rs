//! Extension: a **finite** log with segment cleaning.
//!
//! The paper's disk model assumes an infinite disk — "for archival
//! workloads cleaning may never be needed, and for traditional workloads
//! cleaning performance has been extensively examined" (§II). This module
//! supplies the finite-disk counterpart so the cleaning-vs-seek trade-off
//! studied by the related work (Rosenblum & Ousterhout's LFS, the greedy
//! and age-threshold cleaners) can be measured on the same substrate:
//!
//! * the log is `segment_count` segments of `segment_sectors` sectors,
//! * writes fill an active segment sequentially,
//! * overwrites invalidate sectors in older segments,
//! * when free segments run low, a **greedy** cleaner copies the victim
//!   segment with the fewest valid sectors to the log head and frees it.

use crate::layer::TranslationLayer;
use serde::{Deserialize, Serialize};
use smrseek_disk::PhysIo;
use smrseek_extent::{ExtentMap, Segment};
use smrseek_trace::{Lba, OpKind, Pba, TraceRecord};

/// Victim-selection policy for cleaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CleanerPolicy {
    /// Clean the closed segment with the fewest valid sectors.
    Greedy,
    /// Rosenblum & Ousterhout's cost-benefit policy: maximize
    /// `(1 - u) * age / (1 + u)`, preferring old, mostly-stale segments.
    /// Old cold segments get cleaned while still somewhat live, keeping
    /// them from pinning space forever.
    CostBenefit,
}

/// Configuration of the finite cleaning log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanerConfig {
    /// First physical sector of the log region (must exceed all LBAs).
    pub log_start: Pba,
    /// Sectors per segment.
    pub segment_sectors: u64,
    /// Number of segments in the log.
    pub segment_count: usize,
    /// Clean when free segments drop to this count (≥1; the cleaner needs
    /// headroom to copy valid data).
    pub reserve_segments: usize,
    /// How cleaning victims are chosen.
    pub policy: CleanerPolicy,
    /// Write hot (overwriting) and cold (first-write + GC-copied) data to
    /// separate active segments — the WOLF-style separation of the related
    /// work, which concentrates staleness and cuts cleaning copies.
    pub separate_hot_cold: bool,
}

impl CleanerConfig {
    /// A log of `segment_count` segments of `segment_sectors` sectors
    /// starting at `log_start`, with a 2-segment cleaning reserve, greedy
    /// cleaning, and no hot/cold separation.
    pub fn new(log_start: Pba, segment_sectors: u64, segment_count: usize) -> Self {
        CleanerConfig {
            log_start,
            segment_sectors,
            segment_count,
            reserve_segments: 2,
            policy: CleanerPolicy::Greedy,
            separate_hot_cold: false,
        }
    }

    /// Selects the victim policy.
    pub fn with_policy(mut self, policy: CleanerPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables hot/cold stream separation.
    pub fn with_hot_cold_separation(mut self) -> Self {
        self.separate_hot_cold = true;
        self
    }

    /// Total log capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.segment_sectors * self.segment_count as u64
    }

    fn stream_count(&self) -> usize {
        if self.separate_hot_cold {
            2
        } else {
            1
        }
    }
}

/// Stream index for hot (overwriting) data.
const HOT: usize = 0;
/// Stream index for cold (first-write and GC-copied) data.
const COLD: usize = 1;

/// Counters of the cleaning log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanerStats {
    /// Sectors written by the host.
    pub host_write_sectors: u64,
    /// Sectors copied by the cleaner (read + rewritten).
    pub gc_copied_sectors: u64,
    /// Cleaning episodes.
    pub cleanings: u64,
    /// Segments reclaimed.
    pub segments_freed: u64,
}

impl CleanerStats {
    /// Write amplification factor: media writes per host write.
    pub fn waf(&self) -> f64 {
        if self.host_write_sectors == 0 {
            0.0
        } else {
            (self.host_write_sectors + self.gc_copied_sectors) as f64
                / self.host_write_sectors as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegState {
    Free,
    Active,
    Closed,
}

/// The finite log-structured layer with greedy cleaning.
///
/// # Example
///
/// ```
/// use smrseek_stl::{CleanerConfig, CleaningLog, TranslationLayer};
/// use smrseek_trace::{Lba, Pba, TraceRecord};
///
/// let config = CleanerConfig::new(Pba::new(1 << 20), 1024, 8);
/// let mut log = CleaningLog::new(config);
/// // Overwrite a small region many times: the log wraps and cleans.
/// for i in 0..100 {
///     log.apply(&TraceRecord::write(i, Lba::new((i % 4) * 128), 128));
/// }
/// assert!(log.stats().cleanings > 0);
/// assert!(log.stats().waf() >= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct CleaningLog {
    config: CleanerConfig,
    map: ExtentMap,
    /// Valid (live) sectors per segment.
    valid: Vec<u64>,
    state: Vec<SegState>,
    /// Active `(segment, fill_offset)` per stream: one stream normally,
    /// hot + cold when separation is on.
    streams: Vec<(usize, u64)>,
    /// Logical clock (writes so far), for segment age.
    op_clock: u64,
    /// Last-write clock per segment (cost-benefit age).
    seg_mtime: Vec<u64>,
    stats: CleanerStats,
}

impl CleaningLog {
    /// Creates an empty log.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than `reserve_segments + 2`
    /// segments, zero-sized segments, or no reserve.
    pub fn new(config: CleanerConfig) -> Self {
        assert!(config.segment_sectors > 0, "segments must be non-empty");
        assert!(config.reserve_segments >= 1, "cleaner needs a reserve");
        let streams = config.stream_count();
        assert!(
            config.segment_count > config.reserve_segments + streams,
            "log needs at least reserve + {} segments",
            streams + 1
        );
        let mut state = vec![SegState::Free; config.segment_count];
        let mut stream_states = Vec::with_capacity(streams);
        for (s, slot) in state.iter_mut().enumerate().take(streams) {
            *slot = SegState::Active;
            stream_states.push((s, 0));
        }
        CleaningLog {
            map: ExtentMap::new(),
            valid: vec![0; config.segment_count],
            state,
            streams: stream_states,
            op_clock: 0,
            seg_mtime: vec![0; config.segment_count],
            stats: CleanerStats::default(),
            config,
        }
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> CleanerStats {
        self.stats
    }

    /// Total sectors currently mapped (ground truth from the extent map;
    /// equals [`Self::live_sectors`] when accounting is consistent).
    pub fn map_mapped_sectors(&self) -> u64 {
        self.map.mapped_sectors()
    }

    /// Live (valid) sectors across the log.
    pub fn live_sectors(&self) -> u64 {
        self.valid.iter().sum()
    }

    /// Current utilization: live sectors / capacity.
    pub fn utilization(&self) -> f64 {
        self.live_sectors() as f64 / self.config.capacity_sectors() as f64
    }

    /// Free segments remaining.
    pub fn free_segments(&self) -> usize {
        self.state.iter().filter(|&&s| s == SegState::Free).count()
    }

    fn segment_start(&self, seg: usize) -> Pba {
        self.config.log_start + seg as u64 * self.config.segment_sectors
    }

    fn segment_of(&self, pba: Pba) -> Option<usize> {
        if pba < self.config.log_start {
            return None;
        }
        let idx = (pba - self.config.log_start) / self.config.segment_sectors;
        usize::try_from(idx)
            .ok()
            .filter(|&i| i < self.config.segment_count)
    }

    /// Devalidates whatever `[lba, lba+sectors)` currently maps to.
    ///
    /// Extents in the map coalesce across segment boundaries (segments
    /// are physically adjacent), so each mapped piece must be split at
    /// segment boundaries before decrementing per-segment valid counts.
    fn devalidate(&mut self, lba: Lba, sectors: u64) {
        for seg in self.map.lookup(lba, sectors) {
            if let Segment::Mapped(e) = seg {
                let mut pba = e.pba;
                let mut left = e.sectors;
                while left > 0 {
                    let Some(idx) = self.segment_of(pba) else {
                        break; // outside the log region: not tracked
                    };
                    let seg_end = self.segment_start(idx) + self.config.segment_sectors;
                    let take = left.min(seg_end - pba);
                    self.valid[idx] = self.valid[idx].saturating_sub(take);
                    pba += take;
                    left -= take;
                }
            }
        }
    }

    /// Classifies a host write: hot if it overwrites any data currently
    /// in the log (churn), cold if it is a first write. Without
    /// separation everything shares stream 0.
    fn classify(&self, lba: Lba, sectors: u64) -> usize {
        if !self.config.separate_hot_cold {
            return 0;
        }
        let overwrites = self.map.lookup(lba, sectors).iter().any(|s| !s.is_hole());
        if overwrites {
            HOT
        } else {
            COLD
        }
    }

    /// Appends `sectors` for `lba` on `stream` for a **host** write,
    /// opening segments and cleaning as needed. Emits the physical writes
    /// (and any cleaning I/O) into `out`.
    fn append(&mut self, mut lba: Lba, mut sectors: u64, stream: usize, out: &mut Vec<PhysIo>) {
        while sectors > 0 {
            let (active, offset) = self.streams[stream];
            let room = self.config.segment_sectors - offset;
            if room == 0 {
                self.state[active] = SegState::Closed;
                // Clean *before* opening the next segment; the cleaner's
                // own copies draw on the reserve via `append_gc`, never
                // re-entering this path.
                while self.free_segments() <= self.config.reserve_segments {
                    self.clean_one(out);
                }
                // Cleaning copies may themselves have opened (and
                // partially filled) a new active segment on this stream —
                // keep using it rather than leaking it; only activate a
                // fresh segment when the current one is unusable.
                // (If the GC left this stream's active segment exactly
                // full, the next loop iteration closes it properly.)
                if self.state[self.streams[stream].0] != SegState::Active {
                    self.activate_next_free(stream);
                }
                continue;
            }
            let take = sectors.min(room);
            self.write_at_head(lba, take, stream, out);
            lba += take;
            sectors -= take;
        }
    }

    /// Append path for cleaning copies: identical to [`Self::append`] but
    /// never triggers cleaning — the `reserve_segments` exist exactly so
    /// GC copies always have room. Copies are cold by definition (they
    /// survived at least one cleaning generation).
    ///
    /// # Panics
    ///
    /// Panics if the reserve is exhausted mid-copy (a configuration with
    /// `reserve_segments` < 1, which the constructor rejects).
    fn append_gc(&mut self, mut lba: Lba, mut sectors: u64, out: &mut Vec<PhysIo>) {
        let stream = if self.config.separate_hot_cold {
            COLD
        } else {
            0
        };
        while sectors > 0 {
            let (active, offset) = self.streams[stream];
            let room = self.config.segment_sectors - offset;
            if room == 0 {
                self.state[active] = SegState::Closed;
                self.activate_next_free(stream);
                continue;
            }
            let take = sectors.min(room);
            self.write_at_head(lba, take, stream, out);
            lba += take;
            sectors -= take;
        }
    }

    fn write_at_head(&mut self, lba: Lba, take: u64, stream: usize, out: &mut Vec<PhysIo>) {
        let (active, offset) = self.streams[stream];
        let at = self.segment_start(active) + offset;
        self.devalidate(lba, take);
        self.map.insert(lba, take, at);
        self.valid[active] += take;
        self.streams[stream].1 += take;
        self.op_clock += 1;
        self.seg_mtime[active] = self.op_clock;
        out.push(PhysIo::write(at, take));
    }

    fn activate_next_free(&mut self, stream: usize) {
        let next = self
            .state
            .iter()
            .position(|&s| s == SegState::Free)
            .expect("a free segment must exist (cleaning reserve)");
        self.state[next] = SegState::Active;
        self.streams[stream] = (next, 0);
    }

    /// Greedy cleaning: copy the closed segment with the fewest valid
    /// sectors to the log head and free it.
    ///
    /// # Panics
    ///
    /// Panics if no closed segment exists (the log is misconfigured) or
    /// the log is overcommitted (utilization too close to 1 to make
    /// progress).
    fn clean_one(&mut self, out: &mut Vec<PhysIo>) {
        let victim = self
            .select_victim()
            .expect("a closed segment must exist to clean");
        assert!(
            self.valid[victim] < self.config.segment_sectors,
            "log overcommitted: victim segment is fully live (utilization {:.2})",
            self.utilization()
        );
        let start = self.segment_start(victim);
        let seg_end = start + self.config.segment_sectors;
        // Collect the victim's live data by scanning the map. Physically
        // adjacent appends coalesce across segment boundaries, so an
        // extent may straddle the victim's edges: clip each overlapping
        // extent to the victim's range.
        let live: Vec<(Lba, u64, Pba)> = self
            .map
            .iter()
            .filter_map(|e| {
                let p0 = e.pba.max(start);
                let p1 = e.pba_end().min(seg_end);
                (p0 < p1).then(|| {
                    let offset = p0 - e.pba;
                    (e.lba + offset, p1 - p0, p0)
                })
            })
            .collect();
        self.stats.cleanings += 1;
        self.stats.segments_freed += 1;
        for (lba, sectors, pba) in live {
            out.push(PhysIo::read(pba, sectors));
            self.stats.gc_copied_sectors += sectors;
            // Rewriting live data uses the GC append path, which draws on
            // the cleaning reserve and never re-enters cleaning. Each
            // remap devalidates the victim's copy, so its valid count
            // drains to exactly zero by the end of the loop. The victim is
            // freed only *after* the copies, so the GC cannot reuse it as
            // the new active segment while old mappings still point into
            // it (which would corrupt the valid accounting).
            self.append_gc(lba, sectors, out);
        }
        debug_assert_eq!(
            self.valid[victim], 0,
            "all live data must have left the victim"
        );
        self.state[victim] = SegState::Free;
        self.valid[victim] = 0;
    }

    /// Picks the cleaning victim per the configured policy.
    fn select_victim(&self) -> Option<usize> {
        let closed = self
            .state
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == SegState::Closed)
            .map(|(i, _)| i);
        match self.config.policy {
            CleanerPolicy::Greedy => closed.min_by_key(|&i| self.valid[i]),
            CleanerPolicy::CostBenefit => closed.max_by(|&a, &b| {
                self.cost_benefit(a)
                    .partial_cmp(&self.cost_benefit(b))
                    .expect("scores are finite")
            }),
        }
    }

    /// Rosenblum's cost-benefit score: `(1 - u) * age / (1 + u)`.
    fn cost_benefit(&self, seg: usize) -> f64 {
        let u = self.valid[seg] as f64 / self.config.segment_sectors as f64;
        let age = (self.op_clock - self.seg_mtime[seg]) as f64;
        (1.0 - u) * age / (1.0 + u)
    }
}

impl TranslationLayer for CleaningLog {
    fn apply(&mut self, rec: &TraceRecord) -> Vec<PhysIo> {
        match rec.op {
            OpKind::Write => {
                let mut out = Vec::new();
                self.stats.host_write_sectors += u64::from(rec.sectors);
                let stream = self.classify(rec.lba, u64::from(rec.sectors));
                self.append(rec.lba, u64::from(rec.sectors), stream, &mut out);
                out
            }
            OpKind::Read => {
                let mut out: Vec<PhysIo> = Vec::new();
                for seg in self.map.lookup(rec.lba, u64::from(rec.sectors)) {
                    let (start, len) = match seg {
                        Segment::Mapped(e) => (e.pba, e.sectors),
                        Segment::Hole { lba, sectors } => (Pba::new(lba.sector()), sectors),
                    };
                    match out.last_mut() {
                        Some(last) if last.end() == start => last.sectors += len,
                        _ => out.push(PhysIo::read(start, len)),
                    }
                }
                out
            }
        }
    }

    fn name(&self) -> &str {
        "CleaningLog"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(segments: usize, sectors: u64) -> CleanerConfig {
        CleanerConfig::new(Pba::new(1_000_000), sectors, segments)
    }

    #[test]
    fn writes_fill_segments_sequentially() {
        let mut log = CleaningLog::new(config(8, 100));
        let w = log.apply(&TraceRecord::write(0, Lba::new(0), 150));
        assert_eq!(
            w,
            vec![
                PhysIo::write(Pba::new(1_000_000), 100),
                PhysIo::write(Pba::new(1_000_100), 50)
            ]
        );
        assert_eq!(log.live_sectors(), 150);
        assert_eq!(log.free_segments(), 6);
    }

    #[test]
    fn read_after_write_translates() {
        let mut log = CleaningLog::new(config(8, 100));
        log.apply(&TraceRecord::write(0, Lba::new(40), 10));
        let r = log.apply(&TraceRecord::read(1, Lba::new(40), 10));
        assert_eq!(r, vec![PhysIo::read(Pba::new(1_000_000), 10)]);
        // Unwritten data reads from identity.
        let r = log.apply(&TraceRecord::read(2, Lba::new(0), 10));
        assert_eq!(r, vec![PhysIo::read(Pba::new(0), 10)]);
    }

    #[test]
    fn overwrites_devalidate_old_segments() {
        let mut log = CleaningLog::new(config(8, 100));
        log.apply(&TraceRecord::write(0, Lba::new(0), 100)); // fills seg 0
        log.apply(&TraceRecord::write(1, Lba::new(0), 50)); // overwrite half
        assert_eq!(log.live_sectors(), 100); // 50 stale + 100 live - 50
        assert_eq!(log.valid[0], 50);
        assert_eq!(log.valid[1], 50);
    }

    #[test]
    fn cleaning_reclaims_stale_segments() {
        let mut log = CleaningLog::new(config(6, 100));
        // Keep overwriting the same 100 sectors: utilization stays low but
        // segments fill with stale data, forcing cleaning.
        let mut cleaned_io = 0usize;
        for i in 0..40u64 {
            let ios = log.apply(&TraceRecord::write(i, Lba::new(0), 100));
            cleaned_io += ios.iter().filter(|io| io.op == OpKind::Read).count();
        }
        assert!(log.stats().cleanings > 0, "log must have cleaned");
        assert_eq!(log.live_sectors(), 100);
        // Victims were fully stale, so greedy cleaning copied nothing.
        assert_eq!(log.stats().gc_copied_sectors, 0);
        assert_eq!(cleaned_io, 0);
        assert!((log.stats().waf() - 1.0).abs() < 1e-9);
        // Data stays correct across cleanings.
        let r = log.apply(&TraceRecord::read(100, Lba::new(0), 100));
        assert_eq!(r.len(), 1);
    }

    /// Interleaves hot overwrites with cold write-once stripes so every
    /// segment mixes both: overwriting the hot halves leaves segments
    /// half-live, forcing the cleaner to copy the cold halves.
    fn churn_with_cold(cold_stripes: u64) -> CleaningLog {
        let mut log = CleaningLog::new(config(10, 100));
        let mut t = 0u64;
        for i in 0..120u64 {
            t += 1;
            // Hot: 4 stripes of 50 sectors, cyclically overwritten.
            log.apply(&TraceRecord::write(t, Lba::new((i % 4) * 50), 50));
            if i % 12 == 0 && i / 12 < cold_stripes {
                t += 1;
                // Cold: written once, never again (distinct LBAs far
                // away), spread through the run so cold data co-locates
                // with hot churn in many segments.
                let k = i / 12;
                log.apply(&TraceRecord::write(t, Lba::new(100_000 + k * 50), 50));
            }
        }
        log
    }

    #[test]
    fn cleaning_copies_live_data_and_preserves_translation() {
        let log = churn_with_cold(8);
        assert!(log.stats().cleanings > 0);
        assert!(
            log.stats().gc_copied_sectors > 0,
            "cold halves of mixed segments must be copied"
        );
        assert!(log.stats().waf() > 1.0);
        // Hot and cold data still translate into the log (not identity).
        for lba in [0u64, 150, 100_000, 100_000 + 7 * 50] {
            let pba = log.map.translate(Lba::new(lba)).expect("still mapped");
            assert!(pba >= Pba::new(1_000_000), "lba {lba} left the log");
        }
        assert_eq!(log.live_sectors(), 4 * 50 + 8 * 50);
    }

    #[test]
    fn waf_grows_with_cold_data_share() {
        // The classic LFS result: the more live (cold) data shares
        // segments with churn, the more the cleaner must copy.
        let none = churn_with_cold(0).stats().waf();
        let some = churn_with_cold(8).stats().waf();
        assert!(
            (none - 1.0).abs() < 0.2,
            "aligned hot-only churn needs almost no copying, WAF {none:.2}"
        );
        assert!(
            some > none + 0.05,
            "cold data must raise WAF: {some:.2} vs {none:.2}"
        );
    }

    /// Hot/cold churn mix used by the separation and policy tests: 4 hot
    /// stripes overwritten continuously, `cold_stripes` written once.
    fn churn(config: CleanerConfig, cold_stripes: u64) -> CleaningLog {
        let mut log = CleaningLog::new(config);
        let mut t = 0u64;
        for i in 0..160u64 {
            t += 1;
            log.apply(&TraceRecord::write(t, Lba::new((i % 4) * 50), 50));
            if i % 16 == 0 && i / 16 < cold_stripes {
                t += 1;
                log.apply(&TraceRecord::write(
                    t,
                    Lba::new(100_000 + (i / 16) * 50),
                    50,
                ));
            }
        }
        log
    }

    #[test]
    fn hot_cold_separation_reduces_copying() {
        let base = config(12, 100);
        let mixed = churn(base, 8);
        let separated = churn(base.with_hot_cold_separation(), 8);
        assert!(separated.stats().cleanings > 0);
        assert!(
            separated.stats().gc_copied_sectors <= mixed.stats().gc_copied_sectors,
            "separated {} vs mixed {} copied sectors",
            separated.stats().gc_copied_sectors,
            mixed.stats().gc_copied_sectors
        );
        // Translation stays correct under separation.
        let mut log = separated;
        for lba in [0u64, 150, 100_000, 100_000 + 7 * 50] {
            let r = log.apply(&TraceRecord::read(10_000, Lba::new(lba), 10));
            assert_eq!(r.len(), 1, "lba {lba}");
            assert!(r[0].pba >= Pba::new(1_000_000));
        }
    }

    #[test]
    fn separated_streams_use_distinct_segments() {
        let mut log = CleaningLog::new(config(12, 100).with_hot_cold_separation());
        // First write = cold.
        let w_cold = log.apply(&TraceRecord::write(0, Lba::new(0), 10));
        // Overwrite = hot.
        let w_hot = log.apply(&TraceRecord::write(1, Lba::new(0), 10));
        let seg_of = |io: &PhysIo| (io.pba - Pba::new(1_000_000)) / 100;
        assert_ne!(
            seg_of(&w_cold[0]),
            seg_of(&w_hot[0]),
            "hot and cold land in different segments"
        );
        // Another first-write joins the cold segment.
        let w_cold2 = log.apply(&TraceRecord::write(2, Lba::new(5_000), 10));
        assert_eq!(seg_of(&w_cold[0]), seg_of(&w_cold2[0]));
    }

    #[test]
    fn cost_benefit_policy_cleans_and_stays_correct() {
        let log = churn(config(12, 100).with_policy(CleanerPolicy::CostBenefit), 6);
        assert!(log.stats().cleanings > 0);
        assert!(log.stats().waf() >= 1.0);
        assert_eq!(log.live_sectors(), log.map_mapped_sectors());
    }

    #[test]
    fn cost_benefit_prefers_old_stale_over_young_staler() {
        // Construct: segment A is old and 40% stale; segment B is young
        // and 60% stale. Greedy picks B (fewer valid); cost-benefit
        // weighs age (mtime) and picks A.
        let mut log = CleaningLog::new(config(8, 100).with_policy(CleanerPolicy::CostBenefit));
        // Fill segment 0 (becomes A) early: lba 0..100.
        log.apply(&TraceRecord::write(0, Lba::new(0), 100));
        // Aging traffic: ten small writes to distinct LBAs (segment 1),
        // advancing the logical clock well past A's mtime.
        for k in 0..10u64 {
            log.apply(&TraceRecord::write(1 + k, Lba::new(1000 + k * 10), 10));
        }
        // Fill segment 2 (becomes B) recently: lba 200..300.
        log.apply(&TraceRecord::write(20, Lba::new(200), 100));
        // Invalidate 40 of A and 60 of B (overwrites land in segment 3).
        log.apply(&TraceRecord::write(21, Lba::new(0), 40));
        log.apply(&TraceRecord::write(22, Lba::new(200), 60));
        let greedy = log.clone();
        let a_score = log.cost_benefit(0);
        let b_score = log.cost_benefit(2);
        assert!(
            a_score > b_score,
            "older segment must score higher: A {a_score:.1} vs B {b_score:.1}"
        );
        // Greedy would pick the segment with fewer valid sectors (B).
        assert!(greedy.valid[2] < greedy.valid[0]);
        assert_eq!(log.select_victim(), Some(0));
    }

    #[test]
    fn name_is_cleaning_log() {
        assert_eq!(CleaningLog::new(config(4, 10)).name(), "CleaningLog");
    }

    #[test]
    #[should_panic(expected = "reserve + 2")]
    fn too_few_segments_panics() {
        CleaningLog::new(config(3, 10));
    }

    #[test]
    #[should_panic(expected = "overcommitted")]
    fn overcommit_panics() {
        let mut log = CleaningLog::new(config(4, 100));
        // 4 segments, reserve 2 -> only ~2 segments of live capacity;
        // writing 350 distinct live sectors cannot fit.
        log.apply(&TraceRecord::write(0, Lba::new(0), 350));
    }
}
