//! Shared helpers for the smrseek benchmark suite.
//!
//! The actual benchmarks live in `benches/`:
//!
//! * `figures` — one Criterion group per paper table/figure
//!   (`table1_characterize`, `fig2_seek_counts`, ..., `fig11_saf`), each
//!   regenerating the corresponding result end-to-end. Every group also
//!   prints the rendered table once, so `cargo bench` doubles as the
//!   figure regenerator.
//! * `ablations` — the parameter sweeps of DESIGN.md §5
//!   (`ablation_defrag_thresholds`, `ablation_cache_size`,
//!   `ablation_prefetch_window`, `ablation_stacking`).
//! * `micro` — substrate micro-benchmarks: extent-map insert/lookup, LRU
//!   and range-cache operations, Zipf sampling, mis-order scanning, and
//!   end-to-end simulator throughput per layer.
//! * `policy` — the adaptive policy engine's overhead: the fixed
//!   mechanism stack vs the same stack under the engine, plus the raw
//!   classifier's per-record cost.

#![warn(missing_docs)]
use smrseek_sim::experiments::ExpOptions;
use smrseek_trace::TraceRecord;
use smrseek_workloads::profiles;

/// The operation count used by the figure benchmarks: large enough to be
/// representative, small enough that a full `cargo bench` stays in
/// minutes.
pub const BENCH_OPS: usize = 8_000;

/// Standard options for benchmark runs.
pub fn bench_opts() -> ExpOptions {
    ExpOptions {
        seed: 42,
        ops: BENCH_OPS,
    }
}

/// Generates the stand-in trace of a named profile at benchmark scale.
///
/// # Panics
///
/// Panics if `name` is not a Table-I profile.
pub fn bench_trace(name: &str) -> Vec<TraceRecord> {
    profiles::by_name(name)
        .unwrap_or_else(|| panic!("{name} is not a Table-I profile"))
        .generate_scaled(42, BENCH_OPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_trace_has_requested_scale() {
        let trace = bench_trace("w91");
        assert!(trace.len() >= BENCH_OPS * 9 / 10);
        assert!(trace.len() <= BENCH_OPS * 12 / 10);
    }

    #[test]
    #[should_panic(expected = "not a Table-I profile")]
    fn unknown_profile_panics() {
        bench_trace("nope");
    }
}
