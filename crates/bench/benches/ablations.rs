//! Ablation benchmarks for the design choices DESIGN.md §5 calls out:
//! defragmentation gates, cache capacity, prefetch window, and mechanism
//! stacking. Each target prints its sweep table once and benchmarks the
//! sweep end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use smrseek_bench::bench_opts;
use smrseek_sim::experiments::ablation;
use smrseek_workloads::profiles;
use std::hint::black_box;
use std::sync::Once;

fn ablation_defrag_thresholds(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    let w91 = profiles::by_name("w91").expect("w91 exists");
    let w20 = profiles::by_name("w20").expect("w20 exists");
    ONCE.call_once(|| {
        println!(
            "\n{}{}",
            ablation::render(&[ablation::defrag_thresholds(&w91, &opts)]),
            ablation::render(&[ablation::defrag_thresholds(&w20, &opts)])
        );
    });
    c.bench_function("ablation_defrag_thresholds", |b| {
        b.iter(|| black_box(ablation::defrag_thresholds(&w91, &opts)))
    });
}

fn ablation_cache_size(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    let w91 = profiles::by_name("w91").expect("w91 exists");
    ONCE.call_once(|| {
        println!(
            "\n{}",
            ablation::render(&[ablation::cache_size(&w91, &opts)])
        )
    });
    c.bench_function("ablation_cache_size", |b| {
        b.iter(|| black_box(ablation::cache_size(&w91, &opts)))
    });
}

fn ablation_prefetch_window(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    let w84 = profiles::by_name("w84").expect("w84 exists");
    ONCE.call_once(|| {
        println!(
            "\n{}",
            ablation::render(&[ablation::prefetch_window(&w84, &opts)])
        )
    });
    c.bench_function("ablation_prefetch_window", |b| {
        b.iter(|| black_box(ablation::prefetch_window(&w84, &opts)))
    });
}

fn ablation_stacking(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    let w91 = profiles::by_name("w91").expect("w91 exists");
    ONCE.call_once(|| println!("\n{}", ablation::render(&[ablation::stacking(&w91, &opts)])));
    c.bench_function("ablation_stacking", |b| {
        b.iter(|| black_box(ablation::stacking(&w91, &opts)))
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets =
        ablation_defrag_thresholds,
        ablation_cache_size,
        ablation_prefetch_window,
        ablation_stacking,
}
criterion_main!(ablations);
