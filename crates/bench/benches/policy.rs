//! Benchmarks for the adaptive policy engine: the raw classifier's
//! per-record cost, and the end-to-end overhead the engine (plus the
//! flash tier it manages) adds to a fully-stacked simulation run.
//!
//! `adaptive_replay_w91` vs `fixed_stack_replay_w91` is the headline
//! number: same trace, same three mechanisms — the delta is what
//! per-record classification, gating, and tiered caching cost.

use criterion::{criterion_group, criterion_main, Criterion};
use smrseek_bench::bench_trace;
use smrseek_policy::{PolicyConfig, PolicyEngine};
use smrseek_sim::{SimConfig, Simulation};
use smrseek_trace::OpKind;
use std::hint::black_box;

/// The fixed-mechanism stack the adaptive config gates: identical layer
/// and mechanisms, no policy engine, no flash tier — the overhead
/// baseline.
fn fixed_stack() -> SimConfig {
    let mut config = SimConfig::ls_adaptive();
    config.policy = None;
    config.flash_cache_bytes = None;
    config
}

fn policy_overhead(c: &mut Criterion) {
    let trace = bench_trace("w91");
    let mut group = c.benchmark_group("policy_overhead");
    group.bench_function("fixed_stack_replay_w91", |b| {
        let config = fixed_stack();
        b.iter(|| black_box(Simulation::new(&config).run_trace(&trace)))
    });
    group.bench_function("adaptive_replay_w91", |b| {
        let config = SimConfig::ls_adaptive();
        b.iter(|| black_box(Simulation::new(&config).run_trace(&trace)))
    });
    group.bench_function("classifier_observe_w91", |b| {
        // The engine alone, outside the simulator: one observe plus one
        // fragmentation feedback per read, over the same trace.
        b.iter(|| {
            let mut engine = PolicyEngine::new(PolicyConfig::default());
            for rec in &trace {
                let is_read = rec.op == OpKind::Read;
                black_box(engine.observe(rec.lba.sector(), is_read));
                if is_read {
                    engine.record_fragmented(rec.lba.sector());
                }
            }
            black_box(engine.stats())
        })
    });
    group.finish();
}

criterion_group! {
    name = policy;
    config = Criterion::default().sample_size(10);
    targets = policy_overhead,
}
criterion_main!(policy);
