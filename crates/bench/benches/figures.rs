//! One Criterion group per paper table/figure. Each group benchmarks the
//! end-to-end regeneration of the result and prints the rendered table
//! once, so `cargo bench -p smrseek-bench --bench figures` both measures
//! and reproduces the evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use smrseek_bench::bench_opts;
use smrseek_sim::experiments::{fig10, fig11, fig2, fig3, fig4, fig5, fig7, fig8, table1};
use std::hint::black_box;
use std::sync::Once;

fn print_once(once: &Once, render: impl FnOnce() -> String) {
    once.call_once(|| println!("\n{}", render()));
}

fn table1_characterize(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    print_once(&ONCE, || table1::render(&table1::run(&opts)));
    c.bench_function("table1_characterize", |b| {
        b.iter(|| black_box(table1::run(&opts)))
    });
}

fn fig2_seek_counts(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    print_once(&ONCE, || fig2::render(&fig2::run(&opts)));
    c.bench_function("fig2_seek_counts", |b| {
        b.iter(|| black_box(fig2::run(&opts)))
    });
}

fn fig3_longseek_series(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    print_once(&ONCE, || fig3::render(&fig3::run(&opts)));
    c.bench_function("fig3_longseek_series", |b| {
        b.iter(|| black_box(fig3::run(&opts)))
    });
}

fn fig4_distance_cdf(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    print_once(&ONCE, || fig4::render(&fig4::run(&opts)));
    c.bench_function("fig4_distance_cdf", |b| {
        b.iter(|| black_box(fig4::run(&opts)))
    });
}

fn fig5_frag_cdf(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    print_once(&ONCE, || fig5::render(&fig5::run(&opts)));
    c.bench_function("fig5_frag_cdf", |b| b.iter(|| black_box(fig5::run(&opts))));
}

fn fig7_write_patterns(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    print_once(&ONCE, || fig7::render(&fig7::run(&opts)));
    c.bench_function("fig7_write_patterns", |b| {
        b.iter(|| black_box(fig7::run(&opts)))
    });
}

fn fig8_misordered(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    print_once(&ONCE, || fig8::render(&fig8::run(&opts)));
    c.bench_function("fig8_misordered", |b| {
        b.iter(|| black_box(fig8::run(&opts)))
    });
}

fn fig10_fragment_skew(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    print_once(&ONCE, || fig10::render(&fig10::run(&opts)));
    c.bench_function("fig10_fragment_skew", |b| {
        b.iter(|| black_box(fig10::run(&opts)))
    });
}

fn fig11_saf(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    print_once(&ONCE, || fig11::render(&fig11::run(&opts)));
    c.bench_function("fig11_saf", |b| b.iter(|| black_box(fig11::run(&opts))));
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        table1_characterize,
        fig2_seek_counts,
        fig3_longseek_series,
        fig4_distance_cdf,
        fig5_frag_cdf,
        fig7_write_patterns,
        fig8_misordered,
        fig10_fragment_skew,
        fig11_saf,
}
criterion_main!(figures);
