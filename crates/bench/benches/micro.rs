//! Substrate micro-benchmarks: the data structures on the simulator's hot
//! paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smrseek_bench::{bench_trace, BENCH_OPS};
use smrseek_cache::{ByteLru, RangeCache};
use smrseek_extent::ExtentMap;
use smrseek_sim::{SimConfig, Simulation};
use smrseek_stl::count_misordered_writes;
use smrseek_trace::binary::{write_binary_v2, MmapTrace};
use smrseek_trace::parse::{parse_reader, CpParser};
use smrseek_trace::writer::write_cp_csv;
use smrseek_trace::{Lba, Pba, MIB};
use smrseek_workloads::Zipf;
use std::hint::black_box;
use std::io::{BufReader, BufWriter};

fn extent_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("extent_map");
    let ops: Vec<(u64, u64, u64)> = {
        let mut rng = StdRng::seed_from_u64(1);
        (0..10_000u64)
            .map(|i| (rng.gen_range(0..1 << 20), rng.gen_range(1..64), i * 64))
            .collect()
    };
    group.throughput(Throughput::Elements(ops.len() as u64));
    group.bench_function("insert_10k_random", |b| {
        b.iter(|| {
            let mut map = ExtentMap::new();
            for &(lba, len, pba) in &ops {
                map.insert(Lba::new(lba), len, Pba::new(1 << 30 | pba));
            }
            black_box(map.len())
        })
    });

    let mut map = ExtentMap::new();
    for &(lba, len, pba) in &ops {
        map.insert(Lba::new(lba), len, Pba::new(1 << 30 | pba));
    }
    group.throughput(Throughput::Elements(1000));
    group.bench_function("lookup_1k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let queries: Vec<u64> = (0..1000).map(|_| rng.gen_range(0..1 << 20)).collect();
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                total += map.lookup(Lba::new(q), 128).len();
            }
            black_box(total)
        })
    });
    // Same queries as lookup_1k, through the non-allocating visitor: the
    // delta between the two is the per-lookup Vec cost on the hot path.
    group.bench_function("lookup_each_1k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let queries: Vec<u64> = (0..1000).map(|_| rng.gen_range(0..1 << 20)).collect();
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                map.lookup_each(Lba::new(q), 128, |_| total += 1);
            }
            black_box(total)
        })
    });
    group.bench_function("fragments_in_1k", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let queries: Vec<u64> = (0..1000).map(|_| rng.gen_range(0..1 << 20)).collect();
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                total += map.fragments_in(Lba::new(q), 128);
            }
            black_box(total)
        })
    });
    group.finish();
}

fn caches(c: &mut Criterion) {
    let mut group = c.benchmark_group("caches");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("byte_lru_insert_10k", |b| {
        b.iter(|| {
            let mut lru = ByteLru::new(64 * MIB);
            for i in 0..10_000u64 {
                lru.insert(i % 4096, 16 * 1024);
            }
            black_box(lru.len())
        })
    });
    group.bench_function("range_cache_mixed_10k", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let ops: Vec<(u64, bool)> = (0..10_000)
            .map(|_| (rng.gen_range(0..1u64 << 24), rng.gen_bool(0.5)))
            .collect();
        b.iter(|| {
            let mut cache = RangeCache::with_capacity_bytes(64 * MIB);
            let mut hits = 0u64;
            for &(pba, is_query) in &ops {
                if is_query {
                    hits += u64::from(cache.covers(Pba::new(pba), 32));
                } else {
                    cache.insert(Pba::new(pba), 32);
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    let zipf = Zipf::new(100_000, 1.0);
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("zipf_sample_100k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(zipf.sample(&mut rng));
            }
            black_box(acc)
        })
    });
    group.throughput(Throughput::Elements(BENCH_OPS as u64));
    group.bench_function("profile_w91_generate", |b| {
        b.iter(|| black_box(bench_trace("w91").len()))
    });
    group.finish();
}

fn simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let trace = bench_trace("w91");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (name, config) in [
        ("nols", SimConfig::no_ls()),
        ("ls", SimConfig::log_structured()),
        ("ls_defrag", SimConfig::ls_defrag()),
        ("ls_prefetch", SimConfig::ls_prefetch()),
        ("ls_cache", SimConfig::ls_cache()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("replay_w91", name),
            &config,
            |b, config| b.iter(|| black_box(Simulation::new(config).run_trace(&trace).seeks)),
        );
    }
    group.finish();
}

/// Intra-trace sharding: serial vs sharded replay of one trace for the
/// direct-seeded NoLS path and the checkpoint-seeded log-structured path
/// (whose shards pay a serial transition prepass first). Speedups are
/// bounded by the host's CPU count; on a single-CPU host these measure
/// sharding overhead.
fn sharded_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_replay");
    let trace = bench_trace("w91");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (name, config) in [
        ("nols", SimConfig::no_ls()),
        ("ls", SimConfig::log_structured()),
    ] {
        for shards in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("w91_{name}"), shards),
                &shards,
                |b, &shards| {
                    b.iter(|| {
                        black_box(
                            Simulation::new(&config)
                                .shards(shards)
                                .run_trace(&trace)
                                .seeks,
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

/// Trace ingestion: records/sec of CSV parsing vs mmapped binary replay —
/// the speedup the `.smrt` cache buys a repeat experiment run.
fn trace_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_ingest");
    let trace = bench_trace("w91");
    let dir = std::env::temp_dir();
    let csv_path = dir.join(format!("smrseek_bench_{}.csv", std::process::id()));
    let bin_path = dir.join(format!("smrseek_bench_{}.smrt", std::process::id()));
    {
        let mut f = BufWriter::new(std::fs::File::create(&csv_path).expect("csv temp"));
        write_cp_csv(&mut f, &trace).expect("csv written");
    }
    {
        let mut f = BufWriter::new(std::fs::File::create(&bin_path).expect("bin temp"));
        write_binary_v2(&mut f, &trace).expect("binary written");
    }
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("csv_parse_w91", |b| {
        b.iter(|| {
            let f = std::fs::File::open(&csv_path).expect("open csv");
            let parsed = parse_reader(BufReader::new(f), CpParser::new()).expect("parses");
            black_box(parsed.len())
        })
    });
    group.bench_function("binary_mmap_w91", |b| {
        b.iter(|| {
            let map = MmapTrace::open(&bin_path).expect("maps");
            let mut sectors = 0u64;
            for r in map.iter() {
                sectors = sectors.wrapping_add(u64::from(r.sectors));
            }
            black_box((map.len(), sectors))
        })
    });
    group.finish();
    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&bin_path).ok();
}

/// Observability overhead: the cost of a disabled span (what every
/// instrumented call site pays when nothing records), a live span, and a
/// full engine replay with coarse phase accounting on — the price the
/// daemon pays for `/metrics` phase breakdowns. The `simulator` group
/// above is the accounting-off baseline for the same replay.
fn obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("span_disabled_100k", |b| {
        b.iter(|| {
            for _ in 0..100_000 {
                let span = smrseek_obs::span("bench:noop");
                black_box(&span);
            }
        })
    });
    group.bench_function("span_recording_100k", |b| {
        smrseek_obs::span::start_recording(1 << 20);
        b.iter(|| {
            for _ in 0..100_000 {
                let span = smrseek_obs::span("bench:live");
                black_box(&span);
            }
        });
        smrseek_obs::span::stop_recording();
        black_box(smrseek_obs::span::take_events().1);
    });
    // Registry handle hot paths: what the daemon pays per request to
    // bump a counter or feed a latency histogram. Both are single
    // relaxed atomic RMWs (the histogram adds a leading_zeros bucket
    // pick), so they should sit within a few ns of the disabled span.
    let registry = smrseek_obs::Registry::new();
    let counter = registry.counter("bench_requests_total", "Bench counter.");
    group.bench_function("registry_counter_100k", |b| {
        b.iter(|| {
            for _ in 0..100_000 {
                counter.inc();
            }
            black_box(counter.get())
        })
    });
    let histogram =
        registry.labeled_histogram("bench_latency_us", "Bench histogram.", "endpoint", "jobs");
    group.bench_function("registry_histogram_100k", |b| {
        let mut us = 0u64;
        b.iter(|| {
            for _ in 0..100_000 {
                us = us.wrapping_add(977) & 0xffff;
                histogram.observe(us);
            }
            black_box(histogram.count())
        })
    });
    let trace = bench_trace("w91");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("replay_w91_ls_phases_on", |b| {
        smrseek_obs::set_phase_accounting(true);
        b.iter(|| {
            black_box(
                Simulation::new(&SimConfig::log_structured())
                    .run_trace(&trace)
                    .seeks,
            )
        });
        smrseek_obs::set_phase_accounting(false);
    });
    group.finish();
}

fn misorder_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("misorder");
    let trace = bench_trace("src2_2");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("count_misordered_src2_2", |b| {
        b.iter(|| black_box(count_misordered_writes(&trace, 256 * 1024)))
    });
    group.finish();
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = extent_map, caches, generators, simulator_throughput, sharded_replay, trace_ingest,
        obs_overhead, misorder_scan,
}
criterion_main!(micro);
