//! Benchmarks for the beyond-the-paper extensions: time-weighted
//! amplification, host-cache interaction, the finite cleaning log, and the
//! zoned-backed log. Each prints its result table once.

use criterion::{criterion_group, criterion_main, Criterion};
use smrseek_bench::{bench_opts, bench_trace};
use smrseek_sim::experiments::{classify, cleaning, host_cache, reorder, time_amp, ExpOptions};
use smrseek_stl::{CleanerConfig, CleaningLog, LogStructured, LsConfig, TranslationLayer};
use smrseek_trace::Pba;
use std::hint::black_box;
use std::sync::Once;

fn extension_time_amp(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = ExpOptions {
        ops: 4000,
        ..bench_opts()
    };
    ONCE.call_once(|| println!("\n{}", time_amp::render(&time_amp::run(&opts))));
    c.bench_function("extension_time_amp", |b| {
        b.iter(|| black_box(time_amp::run(&opts)))
    });
}

fn extension_host_cache(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    ONCE.call_once(|| println!("\n{}", host_cache::render(&host_cache::run(&opts))));
    c.bench_function("extension_host_cache", |b| {
        b.iter(|| black_box(host_cache::run(&opts)))
    });
}

fn extension_cleaning(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = ExpOptions {
        ops: 4000,
        ..bench_opts()
    };
    ONCE.call_once(|| println!("\n{}", cleaning::render(&cleaning::run(&opts))));
    c.bench_function("extension_cleaning", |b| {
        b.iter(|| black_box(cleaning::run(&opts)))
    });
}

fn extension_classify(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    ONCE.call_once(|| println!("\n{}", classify::render(&classify::run(&opts))));
    c.bench_function("extension_classify", |b| {
        b.iter(|| black_box(classify::run(&opts)))
    });
}

fn extension_reorder(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    let opts = bench_opts();
    ONCE.call_once(|| println!("\n{}", reorder::render(&reorder::run(&opts))));
    c.bench_function("extension_reorder", |b| {
        b.iter(|| black_box(reorder::run(&opts)))
    });
}

/// Replay throughput of the two extension layers, for comparison with the
/// `simulator` group in `micro`.
fn extension_layer_throughput(c: &mut Criterion) {
    let trace = bench_trace("w91");
    let mut group = c.benchmark_group("extension_layers");
    group.bench_function("zoned_log_replay_w91", |b| {
        b.iter(|| {
            let mut ls = LogStructured::new(
                LsConfig::for_trace(&trace).with_zones(256 * 1024 * 2), // 256 MiB zones
            );
            let mut ops = 0usize;
            for rec in &trace {
                ops += ls.apply(rec).len();
            }
            black_box(ops)
        })
    });
    group.bench_function("cleaning_log_replay_synthetic", |b| {
        b.iter(|| {
            let mut log = CleaningLog::new(CleanerConfig::new(Pba::new(1 << 30), 2048, 64));
            let mut ops = 0usize;
            for i in 0..4000u64 {
                let rec = smrseek_trace::TraceRecord::write(
                    i,
                    smrseek_trace::Lba::new((i % 64) * 512),
                    64,
                );
                ops += log.apply(&rec).len();
            }
            black_box(ops)
        })
    });
    group.finish();
}

criterion_group! {
    name = extensions;
    config = Criterion::default().sample_size(10);
    targets =
        extension_time_amp,
        extension_host_cache,
        extension_cleaning,
        extension_classify,
        extension_reorder,
        extension_layer_throughput,
}
criterion_main!(extensions);
