//! The `SMRS1\0` checkpoint file format: versioned, digest-protected
//! containers for serialized simulation state.
//!
//! A snapshot freezes a simulation after `record_index` trace records so a
//! later run can resume from there instead of replaying the prefix. The
//! container is deliberately ignorant of what the payload *means* (the
//! engine serializes its own state into it); what it guarantees is
//! *identity* and *integrity*:
//!
//! * **identity** — the header binds the payload to the full-trace digest
//!   and the canonical simulation-config key it was captured under, so a
//!   checkpoint can never be resumed against a different trace or config
//!   (validated with [`Snapshot::verify_trace`] / [`Snapshot::verify_config`]);
//! * **integrity** — the payload carries an FNV-1a 128-bit digest; torn,
//!   truncated or bit-flipped files decode to a typed [`SnapshotError`],
//!   never to silently wrong state and never to a panic.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "SMRS1\0" (6)
//! trace_digest u128 (16)      full-trace content digest
//! record_index u64 (8)        records consumed before the checkpoint
//! config_key_len u32 (4) | config_key (UTF-8)
//! payload_len u64 (8) | payload | payload_digest u128 (16)
//! ```
//!
//! Files are written atomically (same-directory temp file + rename, like
//! the `.smrt` trace sidecars) so a concurrent reader never sees a torn
//! snapshot.
//!
//! # Example
//!
//! ```
//! use smrseek_snapshot::Snapshot;
//!
//! let snap = Snapshot::new(42, 1000, "{\"layer\":\"NoLs\"}".into(), vec![1, 2, 3]);
//! let bytes = snap.encode();
//! assert_eq!(Snapshot::decode(&bytes).unwrap(), snap);
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Magic number opening every snapshot file (version 1).
pub const MAGIC: &[u8; 6] = b"SMRS1\0";

const DIGEST_LEN: usize = 16;
/// Fixed-size part of the container: magic + trace digest + record index.
const FIXED_HEAD_LEN: usize = 6 + DIGEST_LEN + 8;

// FNV-1a 128-bit, the same hash `smrseek_trace::digest` uses for trace
// identity (constants duplicated so this crate stays dependency-free).
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// FNV-1a 128-bit digest of `bytes` — the payload-integrity hash.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut state = FNV_OFFSET;
    for &b in bytes {
        state ^= u128::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Why a snapshot could not be read, decoded, or applied.
///
/// Every failure mode of a hostile or damaged snapshot file maps to a
/// variant here — the format's contract is "typed error or exact state",
/// never a panic and never a silent partial resume.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file does not begin with the `SMRS1\0` magic number.
    BadMagic,
    /// The file ends before the named field is complete.
    Truncated(&'static str),
    /// The file frame decodes but its content is invalid (payload digest
    /// mismatch, non-UTF-8 config key, ...).
    Corrupt(String),
    /// The snapshot was captured from a different trace.
    TraceMismatch {
        /// Digest of the trace being resumed.
        expected: u128,
        /// Digest stored in the snapshot.
        found: u128,
    },
    /// The snapshot was captured under a different simulation config.
    ConfigMismatch {
        /// Canonical config key of the run being resumed.
        expected: String,
        /// Canonical config key stored in the snapshot.
        found: String,
    },
    /// The payload decoded but did not deserialize into engine state.
    BadPayload(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic number)"),
            SnapshotError::Truncated(what) => write!(f, "truncated snapshot: missing {what}"),
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapshotError::TraceMismatch { expected, found } => write!(
                f,
                "snapshot is for a different trace (expected digest {expected:032x}, found {found:032x})"
            ),
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot is for a different config (expected {expected}, found {found})"
            ),
            SnapshotError::BadPayload(why) => {
                write!(f, "snapshot payload does not deserialize: {why}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// One decoded snapshot: identity header plus opaque engine-state payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Full-trace content digest (`TraceDigest::as_u128`) of the trace the
    /// checkpoint belongs to. The *full* digest — not a prefix digest — so
    /// a checkpoint is only ever reusable by the identical complete trace.
    pub trace_digest: u128,
    /// Number of records consumed before the checkpoint; resuming replays
    /// records `record_index..`.
    pub record_index: u64,
    /// Canonical simulation-config key (`SimConfig::cache_key`) the state
    /// was captured under.
    pub config_key: String,
    /// Serialized engine state (opaque to this crate).
    pub payload: Vec<u8>,
}

impl Snapshot {
    /// Assembles a snapshot from its parts.
    pub fn new(
        trace_digest: u128,
        record_index: u64,
        config_key: String,
        payload: Vec<u8>,
    ) -> Self {
        Snapshot {
            trace_digest,
            record_index,
            config_key,
            payload,
        }
    }

    /// Serializes the snapshot to its on-disk byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            FIXED_HEAD_LEN + 4 + self.config_key.len() + 8 + self.payload.len() + DIGEST_LEN,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.trace_digest.to_le_bytes());
        out.extend_from_slice(&self.record_index.to_le_bytes());
        out.extend_from_slice(&(self.config_key.len() as u32).to_le_bytes());
        out.extend_from_slice(self.config_key.as_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&fnv128(&self.payload).to_le_bytes());
        out
    }

    /// Decodes and validates a snapshot from its on-disk byte form.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`] when the bytes are not a snapshot,
    /// [`SnapshotError::Truncated`] when a field is cut short,
    /// [`SnapshotError::Corrupt`] when the payload digest does not match
    /// or the config key is not UTF-8.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 6 {
            if bytes.len() < MAGIC.len() && MAGIC.starts_with(bytes) {
                return Err(SnapshotError::Truncated("magic number"));
            }
            return Err(SnapshotError::BadMagic);
        }
        if &bytes[..6] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut cursor = Cursor { bytes, offset: 6 };
        let trace_digest = u128::from_le_bytes(
            cursor
                .take(DIGEST_LEN, "trace digest")?
                .try_into()
                .expect("fixed slice"),
        );
        let record_index = u64::from_le_bytes(
            cursor
                .take(8, "record index")?
                .try_into()
                .expect("fixed slice"),
        );
        let key_len = u32::from_le_bytes(
            cursor
                .take(4, "config key length")?
                .try_into()
                .expect("fixed slice"),
        ) as usize;
        let config_key = String::from_utf8(cursor.take(key_len, "config key")?.to_vec())
            .map_err(|_| SnapshotError::Corrupt("config key is not UTF-8".into()))?;
        let payload_len = u64::from_le_bytes(
            cursor
                .take(8, "payload length")?
                .try_into()
                .expect("fixed slice"),
        );
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| SnapshotError::Corrupt("payload length overflows".into()))?;
        let payload = cursor.take(payload_len, "payload")?.to_vec();
        let stored_digest = u128::from_le_bytes(
            cursor
                .take(DIGEST_LEN, "payload digest")?
                .try_into()
                .expect("fixed slice"),
        );
        if cursor.offset != bytes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after payload digest",
                bytes.len() - cursor.offset
            )));
        }
        if stored_digest != fnv128(&payload) {
            return Err(SnapshotError::Corrupt("payload digest mismatch".into()));
        }
        Ok(Snapshot {
            trace_digest,
            record_index,
            config_key,
            payload,
        })
    }

    /// Checks that the snapshot belongs to the trace with `digest`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TraceMismatch`] when it does not.
    pub fn verify_trace(&self, digest: u128) -> Result<(), SnapshotError> {
        if self.trace_digest == digest {
            Ok(())
        } else {
            Err(SnapshotError::TraceMismatch {
                expected: digest,
                found: self.trace_digest,
            })
        }
    }

    /// Checks that the snapshot was captured under the canonical config
    /// key `key`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::ConfigMismatch`] when it was not.
    pub fn verify_config(&self, key: &str) -> Result<(), SnapshotError> {
        if self.config_key == key {
            Ok(())
        } else {
            Err(SnapshotError::ConfigMismatch {
                expected: key.to_owned(),
                found: self.config_key.clone(),
            })
        }
    }
}

/// Bounds-checked reader over the raw bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .offset
            .checked_add(n)
            .ok_or(SnapshotError::Truncated(what))?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated(what));
        }
        let out = &self.bytes[self.offset..end];
        self.offset = end;
        Ok(out)
    }
}

/// Returns `true` if `prefix` begins with the snapshot magic number. Six
/// bytes suffice; shorter prefixes never match.
pub fn sniff_magic(prefix: &[u8]) -> bool {
    prefix.starts_with(MAGIC)
}

/// Reads and decodes the snapshot at `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] on read failure, plus every [`Snapshot::decode`]
/// error.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    Snapshot::decode(&bytes)
}

/// Writes `snapshot` to `path` atomically: the bytes land in a
/// same-directory temp file first and are renamed into place, so a
/// concurrent reader never sees a torn snapshot. Parent directories are
/// created as needed.
///
/// # Errors
///
/// [`SnapshotError::Io`] on any filesystem failure (the temp file is
/// cleaned up best-effort).
pub fn write_snapshot(path: &Path, snapshot: &Snapshot) -> Result<(), SnapshotError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension(format!("smrs.tmp.{}", std::process::id()));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&snapshot.encode())?;
        file.flush()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> Snapshot {
        Snapshot::new(
            0xdead_beef_0123_4567_89ab_cdef_dead_beef,
            12_345,
            "{\"layer\":\"NoLs\",\"record_distances\":false}".into(),
            (0u8..=255).cycle().take(1000).collect(),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        assert_eq!(Snapshot::decode(&snap.encode()).unwrap(), snap);
        let empty = Snapshot::new(0, 0, String::new(), Vec::new());
        assert_eq!(Snapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn sniffing() {
        assert!(sniff_magic(&sample().encode()));
        assert!(!sniff_magic(b"SMRT2\0"));
        assert!(!sniff_magic(b"SMRS"));
        assert!(!sniff_magic(b""));
    }

    #[test]
    fn verify_helpers() {
        let snap = sample();
        snap.verify_trace(snap.trace_digest).unwrap();
        assert!(matches!(
            snap.verify_trace(1),
            Err(SnapshotError::TraceMismatch { expected: 1, .. })
        ));
        snap.verify_config(&snap.config_key).unwrap();
        assert!(matches!(
            snap.verify_config("other"),
            Err(SnapshotError::ConfigMismatch { .. })
        ));
    }

    /// The satellite robustness table: every way of damaging a valid
    /// snapshot yields a typed error — never a panic, never an `Ok`.
    #[test]
    fn mutated_snapshots_fail_typed() {
        let valid = sample().encode();

        // Truncation at every possible length.
        for len in 0..valid.len() {
            let err = Snapshot::decode(&valid[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated(_)
                        | SnapshotError::BadMagic
                        | SnapshotError::Corrupt(_)
                ),
                "truncation to {len} gave {err:?}"
            );
        }

        struct Case {
            name: &'static str,
            mutate: fn(&mut Vec<u8>),
            check: fn(&SnapshotError) -> bool,
        }
        let cases = [
            Case {
                name: "wrong magic",
                mutate: |b| b[0] ^= 0xff,
                check: |e| matches!(e, SnapshotError::BadMagic),
            },
            Case {
                name: "trace-format magic",
                mutate: |b| b[..6].copy_from_slice(b"SMRT2\0"),
                check: |e| matches!(e, SnapshotError::BadMagic),
            },
            Case {
                name: "flipped payload bit",
                mutate: |b| {
                    let mid = b.len() - DIGEST_LEN - 10;
                    b[mid] ^= 0x01;
                },
                check: |e| matches!(e, SnapshotError::Corrupt(_)),
            },
            Case {
                name: "flipped payload digest",
                mutate: |b| {
                    let last = b.len() - 1;
                    b[last] ^= 0x80;
                },
                check: |e| matches!(e, SnapshotError::Corrupt(_)),
            },
            Case {
                name: "oversized config-key length",
                mutate: |b| {
                    b[FIXED_HEAD_LEN..FIXED_HEAD_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes())
                },
                check: |e| matches!(e, SnapshotError::Truncated(_)),
            },
            Case {
                name: "oversized payload length",
                mutate: |b| {
                    let key_len = u32::from_le_bytes(
                        b[FIXED_HEAD_LEN..FIXED_HEAD_LEN + 4]
                            .try_into()
                            .expect("fixed slice"),
                    ) as usize;
                    let at = FIXED_HEAD_LEN + 4 + key_len;
                    b[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
                },
                check: |e| matches!(e, SnapshotError::Truncated(_) | SnapshotError::Corrupt(_)),
            },
            Case {
                name: "trailing garbage",
                mutate: |b| b.extend_from_slice(b"junk"),
                check: |e| matches!(e, SnapshotError::Corrupt(_)),
            },
            Case {
                name: "empty file",
                mutate: |b| b.clear(),
                check: |e| matches!(e, SnapshotError::BadMagic | SnapshotError::Truncated(_)),
            },
        ];
        for case in &cases {
            let mut bytes = valid.clone();
            (case.mutate)(&mut bytes);
            let err = Snapshot::decode(&bytes).unwrap_err();
            assert!(
                (case.check)(&err),
                "{}: unexpected error {err:?}",
                case.name
            );
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn file_roundtrip_is_atomic() {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("smrseek_snapshot_test_{}", std::process::id()));
        let path = dir.join("nested/state.smrs");
        let snap = sample();
        write_snapshot(&path, &snap).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), snap);
        let listing: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            listing.iter().all(|n| !n.contains("tmp")),
            "no temp files left behind: {listing:?}"
        );
        assert!(matches!(
            read_snapshot(&dir.join("missing.smrs")),
            Err(SnapshotError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
