//! Append-only event streams bridging producers to streaming connections.

use std::sync::{Arc, Mutex};

use crate::wake::Waker;

#[derive(Debug, Default)]
struct StreamInner {
    chunks: Vec<Arc<[u8]>>,
    closed: bool,
    waker: Option<Waker>,
}

/// An append-only log of byte chunks with a close marker.
///
/// Producers (job workers) [`append`](EventStream::append) encoded events;
/// each streaming connection tracks the index of the next chunk it has yet
/// to send, so subscribers that arrive late replay the full history from
/// chunk zero. When the stream is attached to an event loop, appends and
/// closes wake the loop so it flushes promptly.
#[derive(Debug, Default)]
pub struct EventStream {
    inner: Mutex<StreamInner>,
}

impl EventStream {
    /// Creates an empty, open stream.
    pub fn new() -> EventStream {
        EventStream::default()
    }

    /// Appends one chunk and wakes any attached loop. Returns false (and
    /// drops the chunk) if the stream is already closed.
    pub fn append(&self, bytes: &[u8]) -> bool {
        let waker = {
            let mut inner = self.inner.lock().expect("event stream lock");
            if inner.closed {
                return false;
            }
            inner.chunks.push(Arc::from(bytes));
            inner.waker.clone()
        };
        if let Some(w) = waker {
            w.wake();
        }
        true
    }

    /// Marks the stream complete: no further appends are accepted, and
    /// connections that have sent every chunk finish.
    pub fn close(&self) {
        let waker = {
            let mut inner = self.inner.lock().expect("event stream lock");
            inner.closed = true;
            inner.waker.clone()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Whether [`close`](EventStream::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("event stream lock").closed
    }

    /// Number of chunks appended so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event stream lock").chunks.len()
    }

    /// True when no chunk has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The chunk at `index`, if appended already.
    pub fn chunk(&self, index: usize) -> Option<Arc<[u8]>> {
        self.inner
            .lock()
            .expect("event stream lock")
            .chunks
            .get(index)
            .cloned()
    }

    /// Attaches the loop waker that appends and closes should poke.
    pub fn set_waker(&self, waker: Waker) {
        self.inner.lock().expect("event stream lock").waker = Some(waker);
    }

    /// Every chunk concatenated — convenient for tests and offline reads.
    pub fn collected(&self) -> Vec<u8> {
        let inner = self.inner.lock().expect("event stream lock");
        let mut out = Vec::new();
        for c in &inner.chunks {
            out.extend_from_slice(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_chunk_close_roundtrip() {
        let s = EventStream::new();
        assert!(s.is_empty());
        assert!(!s.is_closed());
        assert!(s.append(b"one"));
        assert!(s.append(b"two"));
        assert_eq!(s.len(), 2);
        assert_eq!(&*s.chunk(0).expect("chunk 0"), b"one");
        assert_eq!(&*s.chunk(1).expect("chunk 1"), b"two");
        assert!(s.chunk(2).is_none());
        s.close();
        assert!(s.is_closed());
        assert!(!s.append(b"late"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.collected(), b"onetwo");
    }

    #[test]
    fn appends_wake_attached_waker() {
        let s = EventStream::new();
        let waker = Waker::new().expect("waker");
        s.set_waker(waker.clone());
        s.append(b"x");
        // The wake byte is observable on the pipe's read end.
        let mut buf = [0u8; 8];
        // SAFETY: reads into a live stack buffer from the waker's own fd.
        let n = unsafe { crate::sys::read(waker.read_fd(), buf.as_mut_ptr().cast(), buf.len()) };
        assert!(n > 0);
    }
}
