//! Minimal raw syscall declarations for the readiness loop.
//!
//! The workspace builds with vendored stand-ins only, so — like the
//! `mmap(2)` wrapper in `smrseek-trace` — the epoll and pipe syscalls are
//! declared here instead of pulling in `libc`/`mio`. The declarations are
//! Linux-shaped; the crate is only built on the Linux hosts the daemon
//! targets.

use std::ffi::c_void;

/// `EPOLL_CTL_ADD`: register a new fd with the epoll instance.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `EPOLL_CTL_DEL`: remove an fd from the epoll instance.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `EPOLL_CTL_MOD`: change the event mask of a registered fd.
pub const EPOLL_CTL_MOD: i32 = 3;

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: an error condition is pending (always reported).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hangup (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: the peer shut down its write side.
pub const EPOLLRDHUP: u32 = 0x2000;

/// `EPOLL_CLOEXEC` for [`epoll_create1`] (same value as `O_CLOEXEC`).
pub const EPOLL_CLOEXEC: i32 = 0o2000000;
/// `O_CLOEXEC` for [`pipe2`].
pub const O_CLOEXEC: i32 = 0o2000000;
/// `O_NONBLOCK` for [`pipe2`].
pub const O_NONBLOCK: i32 = 0o4000;

/// One readiness event, kernel ABI layout (packed on x86_64, naturally
/// aligned elsewhere — matching glibc's per-arch definition).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token echoed back with the event.
    pub data: u64,
}

extern "C" {
    /// `epoll_create1(2)`: creates an epoll instance, returns its fd.
    pub fn epoll_create1(flags: i32) -> i32;
    /// `epoll_ctl(2)`: adds/modifies/removes an fd in the interest list.
    pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    /// `epoll_wait(2)`: blocks until events are ready or the timeout lapses.
    pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    /// `pipe2(2)`: creates a pipe with the given status flags.
    pub fn pipe2(pipefd: *mut i32, flags: i32) -> i32;
    /// `read(2)`: used to drain the self-pipe waker.
    pub fn read(fd: i32, buf: *mut c_void, count: usize) -> isize;
    /// `write(2)`: used to signal the self-pipe waker.
    pub fn write(fd: i32, buf: *const c_void, count: usize) -> isize;
    /// `close(2)`: releases the epoll and pipe fds.
    pub fn close(fd: i32) -> i32;
}
