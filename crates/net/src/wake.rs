//! Self-pipe waker: lets any thread interrupt a blocked `epoll_wait`.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;

use crate::sys;

#[derive(Debug)]
struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: both fds came from a successful pipe2 and are closed
        // exactly once here.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

/// A cloneable handle that wakes the event loop from any thread.
///
/// Built on a nonblocking `pipe2(2)` self-pipe: [`Waker::wake`] writes one
/// byte (a full pipe means a wake is already pending, which is fine), and
/// the loop registers the read end with its poller and drains it on wakeup.
#[derive(Debug, Clone)]
pub struct Waker {
    inner: Arc<WakePipe>,
}

impl Waker {
    /// Creates the pipe pair (nonblocking, close-on-exec).
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        // SAFETY: fds is a live 2-element array as pipe2 requires.
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker {
            inner: Arc::new(WakePipe {
                read_fd: fds[0],
                write_fd: fds[1],
            }),
        })
    }

    /// Wakes the loop. Never blocks; a full pipe already guarantees the
    /// next `epoll_wait` returns immediately.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: writes one byte from a live stack buffer to an owned fd;
        // EAGAIN (pipe full) is deliberately ignored.
        unsafe {
            sys::write(self.inner.write_fd, (&byte as *const u8).cast(), 1);
        }
    }

    /// The read end, for registration with a [`crate::Poller`].
    pub fn read_fd(&self) -> RawFd {
        self.inner.read_fd
    }

    /// Drains all pending wake bytes so level-triggered polling settles.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reads into a live stack buffer from an owned
            // nonblocking fd.
            let n = unsafe { sys::read(self.inner.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}
