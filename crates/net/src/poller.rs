//! Thin safe wrapper over an `epoll(7)` instance.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use crate::sys;

/// Which readiness conditions a registration is interested in.
///
/// Error and hangup conditions are always reported by the kernel and need
/// no interest bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Report when the fd becomes readable (includes peer write-shutdown).
    pub readable: bool,
    /// Report when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// No readiness interest: the fd stays registered but reports only
    /// errors and hangups.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn mask(self) -> u32 {
        let mut events = 0;
        if self.readable {
            events |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.writable {
            events |= sys::EPOLLOUT;
        }
        events
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (data pending, or the peer shut down writes).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error or hangup: the connection is unusable and should be closed,
    /// except that a peer write-shutdown (`EPOLLRDHUP`) still allows
    /// responses to be written.
    pub closed: bool,
}

/// An `epoll(7)` instance: level-triggered readiness for many fds.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscall, no pointers involved.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            epfd,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: ev is a valid, live EpollEvent for the duration of the
        // call; fd and epfd are owned by the caller/self.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Updates the interest of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes `fd` from the interest list.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    /// Waits for readiness, appending events to `out`. A `None` timeout
    /// blocks indefinitely. Returns the number of events delivered; an
    /// interrupting signal counts as zero events, not an error, so the
    /// caller's loop can observe shutdown flags set by signal handlers.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        // SAFETY: buf is a live, properly laid out EpollEvent array of the
        // advertised length; the kernel writes at most that many entries.
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        let n = n as usize;
        for i in 0..n {
            let ev = self.buf[i];
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                closed: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd came from a successful epoll_create1 and is closed
        // exactly once here.
        unsafe {
            sys::close(self.epfd);
        }
    }
}
