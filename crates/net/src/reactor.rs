//! The readiness loop: accept, frame, dispatch, respond — never blocking.
//!
//! One reactor thread owns every connection. Each connection walks a
//! state machine: **read head → read body** (via [`RequestFramer`]),
//! **dispatch** (inline for cheap handlers, on the auxiliary pool via
//! [`Action::Defer`] for anything that may block), then **write response**
//! and close — or **stream**, following an [`EventStream`] until it
//! closes. Connections that stall mid-request are reaped when the idle
//! timeout lapses, so a slow-loris client pins one slab slot for at most
//! `idle_timeout`, not a thread.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::conn::{FrameStatus, FramingLimits, RequestFramer};
use crate::poller::{Event, Interest, Poller};
use crate::stream::EventStream;
use crate::wake::Waker;

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Request framing size limits.
    pub limits: FramingLimits,
    /// A connection that makes no progress for this long is reaped —
    /// covers slow-loris heads, stalled bodies, and unread responses.
    /// Streaming connections are exempt (they idle between events).
    pub idle_timeout: Duration,
    /// Streaming connections receive an SSE keep-alive comment after this
    /// much quiet, which also detects silently vanished subscribers.
    pub ping_interval: Duration,
    /// Threads in the auxiliary pool that runs [`Action::Defer`] work.
    pub aux_threads: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            limits: FramingLimits::default(),
            idle_timeout: Duration::from_secs(10),
            ping_interval: Duration::from_secs(10),
            aux_threads: 4,
        }
    }
}

/// How a dispatched request is answered.
pub enum Action {
    /// Write these pre-serialized response bytes, then close.
    Respond(Vec<u8>),
    /// Write `head` (status line + headers), then follow `stream`: every
    /// chunk appended — including those appended before the subscriber
    /// arrived — is written in order, and the connection closes once the
    /// stream closes and all chunks are flushed.
    Stream {
        /// Response head bytes, through the blank line.
        head: Vec<u8>,
        /// The chunk log to follow.
        stream: Arc<EventStream>,
    },
    /// Run this closure on the auxiliary pool — for handlers that touch
    /// disk, take contended locks, or call out to peers — and apply the
    /// action it returns. The reactor thread never runs it.
    Defer(Box<dyn FnOnce() -> Action + Send + 'static>),
}

/// Decides how each complete request is answered.
///
/// Implemented for any `Fn(Vec<u8>) -> Action`. The argument is the raw
/// request bytes exactly as framed (head + body); the dispatcher is
/// expected to parse them with its own HTTP parser. Runs on the reactor
/// thread, so inline work must be quick — use [`Action::Defer`] otherwise.
pub trait Dispatcher: Send + Sync + 'static {
    /// Handles one framed request.
    fn dispatch(&self, raw: Vec<u8>) -> Action;
}

impl<F> Dispatcher for F
where
    F: Fn(Vec<u8>) -> Action + Send + Sync + 'static,
{
    fn dispatch(&self, raw: Vec<u8>) -> Action {
        self(raw)
    }
}

/// Counters the reactor maintains, shared for `/metrics` export.
#[derive(Debug, Default)]
pub struct LoopStats {
    /// Connections accepted since start.
    pub accepted: AtomicU64,
    /// accept(2) failures (e.g. fd exhaustion).
    pub accept_errors: AtomicU64,
    /// Currently open connections (gauge).
    pub active: AtomicU64,
    /// Connections reaped by the idle timeout.
    pub reaped_idle: AtomicU64,
    /// Requests handed to the auxiliary pool.
    pub deferred: AtomicU64,
    /// Times the reactor woke from `epoll_wait`.
    pub wakeups: AtomicU64,
    /// Connections currently following an event stream (gauge).
    pub streaming: AtomicU64,
}

/// A plain-fn accessor for one [`LoopStats`] counter, usable as a
/// metrics callback without capturing anything.
pub type StatReader = fn(&LoopStats) -> u64;

impl LoopStats {
    /// Stable `(name, reader)` pairs for every event-loop counter, in
    /// exposition order. This is the hook a metrics registry uses to
    /// surface the reactor's counters as callback-backed series without
    /// this crate growing a dependency on any metrics machinery: each
    /// reader is a plain fn the caller can wrap in a closure over its
    /// `Arc<LoopStats>`.
    pub fn readers() -> [(&'static str, StatReader); 7] {
        fn read(cell: &AtomicU64) -> u64 {
            cell.load(Ordering::Relaxed)
        }
        [
            ("accepted", |s: &LoopStats| read(&s.accepted)),
            ("accept_errors", |s: &LoopStats| read(&s.accept_errors)),
            ("active", |s: &LoopStats| read(&s.active)),
            ("reaped_idle", |s: &LoopStats| read(&s.reaped_idle)),
            ("deferred", |s: &LoopStats| read(&s.deferred)),
            ("wakeups", |s: &LoopStats| read(&s.wakeups)),
            ("streaming", |s: &LoopStats| read(&s.streaming)),
        ]
    }
}

type AuxTask = Box<dyn FnOnce() -> Action + Send + 'static>;

struct AuxQueue {
    tasks: VecDeque<(usize, u64, AuxTask)>,
    shutdown: bool,
}

struct AuxShared {
    queue: Mutex<AuxQueue>,
    ready: Condvar,
    completions: Mutex<Vec<(usize, u64, Action)>>,
}

/// Fixed pool of threads running deferred dispatch work off the reactor.
struct AuxPool {
    shared: Arc<AuxShared>,
    handles: Vec<JoinHandle<()>>,
}

impl AuxPool {
    fn new(threads: usize, waker: Waker) -> AuxPool {
        let shared = Arc::new(AuxShared {
            queue: Mutex::new(AuxQueue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            completions: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(threads.max(1));
        for i in 0..threads.max(1) {
            let shared = Arc::clone(&shared);
            let waker = waker.clone();
            let handle = thread::Builder::new()
                .name(format!("smrseek-net-aux-{i}"))
                .spawn(move || loop {
                    let task = {
                        let mut queue = shared.queue.lock().expect("aux queue lock");
                        loop {
                            if let Some(task) = queue.tasks.pop_front() {
                                break task;
                            }
                            if queue.shutdown {
                                return;
                            }
                            queue = shared.ready.wait(queue).expect("aux queue wait");
                        }
                    };
                    let (slot, gen, work) = task;
                    let mut action = work();
                    // Chained defers run here directly; only terminal
                    // actions go back to the reactor.
                    while let Action::Defer(next) = action {
                        action = next();
                    }
                    shared
                        .completions
                        .lock()
                        .expect("aux completions lock")
                        .push((slot, gen, action));
                    waker.wake();
                })
                .expect("spawn aux thread");
            handles.push(handle);
        }
        AuxPool { shared, handles }
    }

    fn submit(&self, slot: usize, gen: u64, work: AuxTask) {
        let mut queue = self.shared.queue.lock().expect("aux queue lock");
        queue.tasks.push_back((slot, gen, work));
        drop(queue);
        self.shared.ready.notify_one();
    }

    fn drain_completions(&self) -> Vec<(usize, u64, Action)> {
        std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .expect("aux completions lock"),
        )
    }

    fn shutdown(&mut self) {
        self.shared.queue.lock().expect("aux queue lock").shutdown = true;
        self.shared.ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

enum State {
    /// Accumulating request bytes.
    Reading(RequestFramer),
    /// Request complete; a dispatch (inline or deferred) owns the turn.
    Dispatching,
    /// Flushing the response, then close.
    Writing,
    /// Following an event stream.
    Streaming {
        stream: Arc<EventStream>,
        next: usize,
    },
}

struct Conn {
    stream: TcpStream,
    gen: u64,
    state: State,
    wbuf: Vec<u8>,
    wpos: usize,
    deadline: Option<Instant>,
    last_activity: Instant,
    interest: Interest,
}

enum FlushOutcome {
    /// Everything buffered was written.
    Drained,
    /// The socket filled up; EPOLLOUT will resume the flush.
    Pending,
    /// The connection died and was closed.
    Gone,
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN: u64 = 2;

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    waker: Waker,
    dispatcher: Arc<dyn Dispatcher>,
    config: NetConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    streaming: Vec<usize>,
    aux: AuxPool,
    stats: Arc<LoopStats>,
    shutdown: Arc<AtomicBool>,
    next_gen: u64,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut last_sweep = Instant::now();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            events.clear();
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .is_err()
            {
                break;
            }
            self.stats.wakeups.fetch_add(1, Ordering::Relaxed);
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            for ev in events.drain(..) {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.waker.drain(),
                    token => self.conn_event((token - FIRST_CONN) as usize, ev),
                }
            }
            for (slot, gen, action) in self.aux.drain_completions() {
                self.on_completion(slot, gen, action);
            }
            self.pump_streams();
            let now = Instant::now();
            if now.duration_since(last_sweep) >= Duration::from_millis(50) {
                last_sweep = now;
                self.sweep(now);
            }
        }
        self.aux.shutdown();
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.next_gen += 1;
                    let now = Instant::now();
                    let conn = Conn {
                        stream,
                        gen: self.next_gen,
                        state: State::Reading(RequestFramer::new(self.config.limits)),
                        wbuf: Vec::new(),
                        wpos: 0,
                        deadline: Some(now + self.config.idle_timeout),
                        last_activity: now,
                        interest: Interest::READ,
                    };
                    let slot = match self.free.pop() {
                        Some(slot) => {
                            self.conns[slot] = Some(conn);
                            slot
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.conns.len() - 1
                        }
                    };
                    let fd = self.conns[slot]
                        .as_ref()
                        .expect("just inserted")
                        .stream
                        .as_raw_fd();
                    if self
                        .poller
                        .add(fd, slot as u64 + FIRST_CONN, Interest::READ)
                        .is_err()
                    {
                        self.conns[slot] = None;
                        self.free.push(slot);
                        continue;
                    }
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    self.stats.active.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    fn conn_event(&mut self, slot: usize, ev: Event) {
        let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) else {
            return;
        };
        if ev.closed {
            // Hard error/hangup: nothing more can be exchanged.
            let _ = conn;
            self.close(slot);
            return;
        }
        if ev.readable && matches!(conn.state, State::Reading(_)) {
            self.on_readable(slot);
        }
        if let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) {
            if ev.writable && !matches!(conn.state, State::Reading(_) | State::Dispatching) {
                self.flush_and_settle(slot);
            }
        }
    }

    fn on_readable(&mut self, slot: usize) {
        let mut scratch = [0u8; 4096];
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                return;
            };
            if !matches!(conn.state, State::Reading(_)) {
                return;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    // Peer closed before sending a full request.
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    let status = match &mut conn.state {
                        State::Reading(framer) => framer.push(&scratch[..n]),
                        _ => unreachable!("checked above"),
                    };
                    match status {
                        FrameStatus::Partial => continue,
                        FrameStatus::Complete(raw) => {
                            self.dispatch(slot, raw);
                            return;
                        }
                        FrameStatus::Oversized(msg) => {
                            let status = if msg.contains("head") { 431 } else { 413 };
                            let bytes = framing_response(status, msg);
                            self.settle_dispatch(slot);
                            self.set_response(slot, bytes);
                            return;
                        }
                        FrameStatus::Malformed(msg) => {
                            let bytes = framing_response(400, msg);
                            self.settle_dispatch(slot);
                            self.set_response(slot, bytes);
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// Marks the request consumed: no more read interest, no deadline
    /// until the response path sets one.
    fn settle_dispatch(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) {
            conn.state = State::Dispatching;
            conn.deadline = None;
        }
        self.set_interest(slot, Interest::NONE);
    }

    fn dispatch(&mut self, slot: usize, raw: Vec<u8>) {
        self.settle_dispatch(slot);
        let action = self.dispatcher.dispatch(raw);
        self.apply_action(slot, action);
    }

    fn on_completion(&mut self, slot: usize, gen: u64, action: Action) {
        let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) else {
            return;
        };
        // A stale completion for a slot that was reused must not leak into
        // the new connection.
        if conn.gen != gen || !matches!(conn.state, State::Dispatching) {
            return;
        }
        self.apply_action(slot, action);
    }

    fn apply_action(&mut self, slot: usize, action: Action) {
        match action {
            Action::Respond(bytes) => self.set_response(slot, bytes),
            Action::Stream { head, stream } => self.begin_stream(slot, head, stream),
            Action::Defer(work) => {
                let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) else {
                    return;
                };
                self.stats.deferred.fetch_add(1, Ordering::Relaxed);
                self.aux.submit(slot, conn.gen, work);
            }
        }
    }

    fn set_response(&mut self, slot: usize, bytes: Vec<u8>) {
        let idle = self.config.idle_timeout;
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
            return;
        };
        conn.wbuf = bytes;
        conn.wpos = 0;
        conn.state = State::Writing;
        conn.deadline = Some(Instant::now() + idle);
        self.flush_and_settle(slot);
    }

    fn begin_stream(&mut self, slot: usize, head: Vec<u8>, stream: Arc<EventStream>) {
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                return;
            };
            stream.set_waker(self.waker.clone());
            conn.wbuf = head;
            conn.wpos = 0;
            conn.state = State::Streaming { stream, next: 0 };
            conn.deadline = None;
        }
        self.stats.streaming.fetch_add(1, Ordering::Relaxed);
        self.streaming.push(slot);
        self.pump_stream(slot);
    }

    /// Pulls newly appended chunks into the write buffer and flushes.
    fn pump_stream(&mut self, slot: usize) {
        let finished = {
            let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                return;
            };
            let State::Streaming { stream, next } = &mut conn.state else {
                return;
            };
            while let Some(chunk) = stream.chunk(*next) {
                conn.wbuf.extend_from_slice(&chunk);
                *next += 1;
            }
            stream.is_closed() && stream.chunk(*next).is_none()
        };
        match self.flush_and_settle(slot) {
            FlushOutcome::Drained if finished => self.close(slot),
            _ => {}
        }
    }

    fn pump_streams(&mut self) {
        for slot in self.streaming.clone() {
            self.pump_stream(slot);
        }
    }

    /// Flushes pending bytes and fixes up interest/lifecycle: a drained
    /// `Writing` connection closes, a drained `Streaming` one drops write
    /// interest and waits for more chunks.
    fn flush_and_settle(&mut self, slot: usize) -> FlushOutcome {
        let outcome = loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                return FlushOutcome::Gone;
            };
            if conn.wpos >= conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
                break FlushOutcome::Drained;
            }
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    self.close(slot);
                    return FlushOutcome::Gone;
                }
                Ok(n) => {
                    conn.wpos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break FlushOutcome::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return FlushOutcome::Gone;
                }
            }
        };
        let Some(conn) = self.conns.get(slot).and_then(|c| c.as_ref()) else {
            return FlushOutcome::Gone;
        };
        match (&conn.state, &outcome) {
            (State::Writing, FlushOutcome::Drained) => {
                self.close(slot);
                FlushOutcome::Drained
            }
            (_, FlushOutcome::Drained) => {
                self.set_interest(slot, Interest::NONE);
                FlushOutcome::Drained
            }
            (_, FlushOutcome::Pending) => {
                self.set_interest(slot, Interest::WRITE);
                FlushOutcome::Pending
            }
            (_, FlushOutcome::Gone) => FlushOutcome::Gone,
        }
    }

    fn set_interest(&mut self, slot: usize, interest: Interest) {
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
            return;
        };
        if conn.interest == interest {
            return;
        }
        let fd = conn.stream.as_raw_fd();
        if self
            .poller
            .modify(fd, slot as u64 + FIRST_CONN, interest)
            .is_ok()
        {
            if let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) {
                conn.interest = interest;
            }
        }
    }

    fn sweep(&mut self, now: Instant) {
        let mut reap = Vec::new();
        let mut ping = Vec::new();
        for (slot, conn) in self.conns.iter().enumerate() {
            let Some(conn) = conn else { continue };
            if conn.deadline.is_some_and(|d| now >= d) {
                reap.push(slot);
            } else if matches!(conn.state, State::Streaming { .. })
                && now.duration_since(conn.last_activity) >= self.config.ping_interval
            {
                ping.push(slot);
            }
        }
        for slot in reap {
            self.stats.reaped_idle.fetch_add(1, Ordering::Relaxed);
            self.close(slot);
        }
        for slot in ping {
            if let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) {
                conn.wbuf.extend_from_slice(b": ping\n\n");
                conn.last_activity = now;
            }
            self.flush_and_settle(slot);
        }
    }

    fn close(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.take()) else {
            return;
        };
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        self.stats.active.fetch_sub(1, Ordering::Relaxed);
        if matches!(conn.state, State::Streaming { .. }) {
            self.stats.streaming.fetch_sub(1, Ordering::Relaxed);
            self.streaming.retain(|&s| s != slot);
        }
        self.free.push(slot);
    }
}

/// Minimal JSON error response for framing-level failures, written without
/// consulting the dispatcher (the request never became parseable).
fn framing_response(status: u16, message: &str) -> Vec<u8> {
    let reason = match status {
        400 => "Bad Request",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let body = format!("{{\"error\":\"{message}\"}}");
    format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A running reactor. Dropping it (or calling [`shutdown`]) stops the
/// loop, closes every connection, and joins the reactor + aux threads.
///
/// [`shutdown`]: NetHandle::shutdown
#[derive(Debug)]
pub struct NetHandle {
    local_addr: SocketAddr,
    stats: Arc<LoopStats>,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    thread: Option<JoinHandle<()>>,
}

impl NetHandle {
    /// The bound address of the listener.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The reactor's shared counters.
    pub fn stats(&self) -> Arc<LoopStats> {
        Arc::clone(&self.stats)
    }

    /// A waker any thread can use to nudge the loop.
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Stops the loop and joins its threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts a reactor serving `listener` with `dispatcher`.
///
/// The listener is switched to nonblocking mode and handed to a dedicated
/// reactor thread; the returned handle stops it.
pub fn serve(
    listener: TcpListener,
    dispatcher: Arc<dyn Dispatcher>,
    config: NetConfig,
) -> io::Result<NetHandle> {
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let poller = Poller::new()?;
    let waker = Waker::new()?;
    poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.add(waker.read_fd(), TOKEN_WAKER, Interest::READ)?;
    let stats = Arc::new(LoopStats::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let aux = AuxPool::new(config.aux_threads, waker.clone());
    let reactor = Reactor {
        poller,
        listener,
        waker: waker.clone(),
        dispatcher,
        config,
        conns: Vec::new(),
        free: Vec::new(),
        streaming: Vec::new(),
        aux,
        stats: Arc::clone(&stats),
        shutdown: Arc::clone(&shutdown),
        next_gen: 0,
    };
    let thread = thread::Builder::new()
        .name("smrseek-net".to_string())
        .spawn(move || reactor.run())?;
    Ok(NetHandle {
        local_addr,
        stats,
        shutdown,
        waker,
        thread: Some(thread),
    })
}
