//! Zero-dependency nonblocking network core for smrseekd.
//!
//! The crate supplies the daemon's event-driven connection layer: an
//! `epoll(7)`-based readiness loop ([`serve`]) owning every connection on
//! one reactor thread, incremental HTTP/1.1 request framing
//! ([`RequestFramer`]) with head/body size limits and idle/slow-loris
//! reaping, a pluggable [`Dispatcher`] that answers each framed request
//! with an [`Action`] (respond inline, stream an [`EventStream`], or
//! defer blocking work to an auxiliary pool), and a self-pipe [`Waker`]
//! so producers on any thread can nudge the loop.
//!
//! Like the `mmap(2)` wrapper in `smrseek-trace`, the raw syscalls are
//! declared in [`sys`] instead of pulling in `libc`/`mio`: the workspace
//! builds offline with vendored stand-ins only.

pub mod sys;

mod conn;
mod poller;
mod reactor;
mod stream;
mod wake;

pub use conn::{FrameStatus, FramingLimits, RequestFramer};
pub use poller::{Event, Interest, Poller};
pub use reactor::{serve, Action, Dispatcher, LoopStats, NetConfig, NetHandle};
pub use stream::EventStream;
pub use wake::Waker;
