//! Incremental HTTP/1.1 request framing for nonblocking reads.
//!
//! The reactor feeds whatever bytes `read(2)` returned into a
//! [`RequestFramer`]; the framer finds the end of the request head, parses
//! `Content-Length`, enforces size limits, and reports when the complete
//! request (head + body) has arrived. It does **not** parse the request
//! line or other headers — the dispatcher re-parses the framed bytes with
//! its own HTTP parser, keeping one source of truth for request semantics.

/// Size limits enforced while framing a request.
#[derive(Debug, Clone, Copy)]
pub struct FramingLimits {
    /// Maximum bytes of request head (request line + headers + blank line).
    pub max_head: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body: usize,
}

impl Default for FramingLimits {
    fn default() -> Self {
        FramingLimits {
            max_head: 16 * 1024,
            max_body: 8 * 1024 * 1024,
        }
    }
}

/// Outcome of feeding bytes to a [`RequestFramer`].
#[derive(Debug, PartialEq, Eq)]
pub enum FrameStatus {
    /// More bytes are needed.
    Partial,
    /// A complete request: the exact head + body bytes, ready to parse.
    Complete(Vec<u8>),
    /// The head or declared body exceeds the configured limit. The payload
    /// names which; the connection should answer with the paired HTTP
    /// status and close.
    Oversized(&'static str),
    /// The head arrived but its `Content-Length` is unusable.
    Malformed(&'static str),
}

/// Accumulates request bytes until one full HTTP/1.1 request is buffered.
#[derive(Debug)]
pub struct RequestFramer {
    buf: Vec<u8>,
    scanned: usize,
    /// Byte offset one past the head's terminating `\r\n\r\n`, once seen.
    head_end: Option<usize>,
    /// Total bytes needed (head + declared body), once the head is parsed.
    need: usize,
    limits: FramingLimits,
}

impl RequestFramer {
    /// Creates a framer enforcing `limits`.
    pub fn new(limits: FramingLimits) -> RequestFramer {
        RequestFramer {
            buf: Vec::new(),
            scanned: 0,
            head_end: None,
            need: 0,
            limits,
        }
    }

    /// Bytes buffered so far.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Feeds freshly read bytes; call repeatedly until non-[`Partial`].
    ///
    /// [`Partial`]: FrameStatus::Partial
    pub fn push(&mut self, bytes: &[u8]) -> FrameStatus {
        self.buf.extend_from_slice(bytes);
        if self.head_end.is_none() {
            // Rescan from 3 bytes back so a terminator split across reads
            // is still found.
            let start = self.scanned.saturating_sub(3);
            match find_terminator(&self.buf[start..]) {
                Some(at) => {
                    let head_end = start + at + 4;
                    if head_end > self.limits.max_head {
                        return FrameStatus::Oversized("request head exceeds limit");
                    }
                    let body_len = match content_length(&self.buf[..head_end]) {
                        Ok(n) => n,
                        Err(msg) => return FrameStatus::Malformed(msg),
                    };
                    if body_len > self.limits.max_body {
                        return FrameStatus::Oversized("request body exceeds limit");
                    }
                    self.head_end = Some(head_end);
                    self.need = head_end + body_len;
                }
                None => {
                    self.scanned = self.buf.len();
                    if self.buf.len() > self.limits.max_head {
                        return FrameStatus::Oversized("request head exceeds limit");
                    }
                    return FrameStatus::Partial;
                }
            }
        }
        if self.buf.len() >= self.need {
            let mut request = std::mem::take(&mut self.buf);
            // A compliant client sends nothing past the declared body on a
            // Connection: close exchange; drop any surplus.
            request.truncate(self.need);
            return FrameStatus::Complete(request);
        }
        FrameStatus::Partial
    }
}

fn find_terminator(hay: &[u8]) -> Option<usize> {
    hay.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses `Content-Length` out of a complete request head. Absent means 0;
/// duplicates must agree; the value must be a plain decimal.
fn content_length(head: &[u8]) -> Result<usize, &'static str> {
    let text = std::str::from_utf8(head).map_err(|_| "request head is not valid UTF-8")?;
    let mut found: Option<usize> = None;
    for line in text.split("\r\n").skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if !name.eq_ignore_ascii_case("content-length") {
            continue;
        }
        let parsed: usize = value
            .trim()
            .parse()
            .map_err(|_| "content-length is not a number")?;
        match found {
            Some(prev) if prev != parsed => return Err("conflicting content-length headers"),
            _ => found = Some(parsed),
        }
    }
    Ok(found.unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framer() -> RequestFramer {
        RequestFramer::new(FramingLimits::default())
    }

    #[test]
    fn frames_request_with_body_in_one_push() {
        let raw = b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        match framer().push(raw) {
            FrameStatus::Complete(bytes) => assert_eq!(bytes, raw),
            other => panic!("unexpected status: {other:?}"),
        }
    }

    #[test]
    fn frames_request_across_byte_by_byte_pushes() {
        let raw = b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n";
        let mut f = framer();
        for (i, b) in raw.iter().enumerate() {
            match f.push(std::slice::from_ref(b)) {
                FrameStatus::Partial => assert!(i + 1 < raw.len(), "finished early"),
                FrameStatus::Complete(bytes) => {
                    assert_eq!(i + 1, raw.len(), "finished late");
                    assert_eq!(bytes, raw);
                    return;
                }
                other => panic!("unexpected status: {other:?}"),
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn body_split_across_pushes() {
        let mut f = framer();
        assert_eq!(
            f.push(b"POST / HTTP/1.1\r\nContent-Length: 6\r\n\r\nab"),
            FrameStatus::Partial
        );
        match f.push(b"cdef") {
            FrameStatus::Complete(bytes) => assert!(bytes.ends_with(b"abcdef")),
            other => panic!("unexpected status: {other:?}"),
        }
    }

    #[test]
    fn surplus_after_declared_body_is_dropped() {
        let mut f = framer();
        match f.push(b"POST / HTTP/1.1\r\ncontent-length: 2\r\n\r\nokEXTRA") {
            FrameStatus::Complete(bytes) => assert!(bytes.ends_with(b"ok")),
            other => panic!("unexpected status: {other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut f = RequestFramer::new(FramingLimits {
            max_head: 64,
            max_body: 1024,
        });
        let long = vec![b'a'; 128];
        assert!(matches!(f.push(&long), FrameStatus::Oversized(_)));
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_body_arrives() {
        let mut f = RequestFramer::new(FramingLimits {
            max_head: 1024,
            max_body: 8,
        });
        let status = f.push(b"POST / HTTP/1.1\r\ncontent-length: 9\r\n\r\n");
        assert_eq!(status, FrameStatus::Oversized("request body exceeds limit"));
    }

    #[test]
    fn bad_content_length_is_malformed() {
        let status = framer().push(b"POST / HTTP/1.1\r\ncontent-length: lots\r\n\r\n");
        assert!(matches!(status, FrameStatus::Malformed(_)));
        let status =
            framer().push(b"POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\nx");
        assert!(matches!(status, FrameStatus::Malformed(_)));
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        match framer().push(b"GET /metrics HTTP/1.1\r\n\r\n") {
            FrameStatus::Complete(bytes) => assert!(bytes.ends_with(b"\r\n\r\n")),
            other => panic!("unexpected status: {other:?}"),
        }
    }
}
