//! End-to-end tests of the readiness loop with real sockets.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use smrseek_net::{serve, Action, EventStream, FramingLimits, NetConfig, NetHandle};

fn response_bytes(body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn quick_config() -> NetConfig {
    NetConfig {
        limits: FramingLimits::default(),
        idle_timeout: Duration::from_millis(400),
        ping_interval: Duration::from_millis(200),
        aux_threads: 2,
    }
}

/// Starts a reactor whose dispatcher echoes the raw request length.
fn echo_server(config: NetConfig) -> NetHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    serve(
        listener,
        Arc::new(|raw: Vec<u8>| Action::Respond(response_bytes(&format!("len={}", raw.len())))),
        config,
    )
    .expect("serve")
}

fn roundtrip(handle: &NetHandle, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.write_all(request).expect("write");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    out
}

#[test]
fn inline_respond_roundtrip() {
    let handle = echo_server(quick_config());
    let req = b"GET / HTTP/1.1\r\n\r\n";
    let resp = roundtrip(&handle, req);
    assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "got: {resp}");
    assert!(resp.ends_with(&format!("len={}", req.len())), "got: {resp}");
    assert_eq!(handle.stats().accepted.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn deferred_respond_roundtrip() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(
        listener,
        Arc::new(|raw: Vec<u8>| {
            Action::Defer(Box::new(move || {
                // Simulates blocking work off the reactor thread.
                std::thread::sleep(Duration::from_millis(20));
                Action::Respond(response_bytes(&format!("deferred len={}", raw.len())))
            }))
        }),
        quick_config(),
    )
    .expect("serve");
    let resp = roundtrip(&handle, b"POST /x HTTP/1.1\r\ncontent-length: 3\r\n\r\nabc");
    assert!(resp.contains("deferred len="), "got: {resp}");
    assert_eq!(handle.stats().deferred.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn many_concurrent_connections_all_answered() {
    let handle = echo_server(NetConfig {
        idle_timeout: Duration::from_secs(5),
        ..quick_config()
    });
    let addr = handle.local_addr();
    let mut conns: Vec<TcpStream> = (0..64)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    // Interleave partial writes so many requests are in flight at once.
    for stream in &mut conns {
        stream
            .write_all(b"GET /a HTTP/1.1\r\n")
            .expect("write head");
    }
    for stream in &mut conns {
        stream.write_all(b"\r\n").expect("finish head");
    }
    for mut stream in conns {
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "got: {out}");
    }
    assert_eq!(handle.stats().accepted.load(Ordering::Relaxed), 64);
    handle.shutdown();
}

#[test]
fn stalled_mid_head_connection_is_reaped() {
    let handle = echo_server(quick_config());
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    // Send part of a request head and then stall: a slow-loris client.
    stream
        .write_all(b"GET /slow HTTP/1.1\r\nx-part")
        .expect("write");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut out = Vec::new();
    // The reactor must reap us (EOF) rather than waiting forever.
    stream.read_to_end(&mut out).expect("read to eof");
    assert!(out.is_empty(), "no response expected, got {out:?}");
    assert_eq!(handle.stats().reaped_idle.load(Ordering::Relaxed), 1);
    assert_eq!(handle.stats().active.load(Ordering::Relaxed), 0);
    handle.shutdown();
}

#[test]
fn stalled_mid_body_connection_is_reaped() {
    let handle = echo_server(quick_config());
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .write_all(b"POST /x HTTP/1.1\r\ncontent-length: 100\r\n\r\nonly-a-bit")
        .expect("write");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read to eof");
    assert!(out.is_empty(), "no response expected, got {out:?}");
    assert_eq!(handle.stats().reaped_idle.load(Ordering::Relaxed), 1);
    handle.shutdown();
}

#[test]
fn oversized_head_gets_431() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(
        listener,
        Arc::new(|_raw: Vec<u8>| Action::Respond(response_bytes("unreachable"))),
        NetConfig {
            limits: FramingLimits {
                max_head: 256,
                max_body: 1024,
            },
            ..quick_config()
        },
    )
    .expect("serve");
    let mut request = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
    request.extend(vec![b'a'; 512]);
    request.extend_from_slice(b"\r\n\r\n");
    let resp = roundtrip(&handle, &request);
    assert!(resp.starts_with("HTTP/1.1 431 "), "got: {resp}");
    handle.shutdown();
}

#[test]
fn oversized_body_gets_413() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(
        listener,
        Arc::new(|_raw: Vec<u8>| Action::Respond(response_bytes("unreachable"))),
        NetConfig {
            limits: FramingLimits {
                max_head: 1024,
                max_body: 16,
            },
            ..quick_config()
        },
    )
    .expect("serve");
    let resp = roundtrip(&handle, b"POST / HTTP/1.1\r\ncontent-length: 64\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 413 "), "got: {resp}");
    handle.shutdown();
}

#[test]
fn streaming_replays_history_and_follows_appends() {
    let stream_log = Arc::new(EventStream::new());
    // Two chunks exist before any subscriber connects.
    stream_log.append(b"event: a\ndata: 1\n\n");
    stream_log.append(b"event: b\ndata: 2\n\n");
    let dispatch_log = Arc::clone(&stream_log);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(
        listener,
        Arc::new(move |_raw: Vec<u8>| Action::Stream {
            head:
                b"HTTP/1.1 200 OK\r\ncontent-type: text/event-stream\r\nconnection: close\r\n\r\n"
                    .to_vec(),
            stream: Arc::clone(&dispatch_log),
        }),
        quick_config(),
    )
    .expect("serve");
    let mut conn = TcpStream::connect(handle.local_addr()).expect("connect");
    conn.write_all(b"GET /events HTTP/1.1\r\n\r\n")
        .expect("write");
    conn.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    // Late append + close: the subscriber sees history, the live event,
    // and then EOF.
    std::thread::sleep(Duration::from_millis(100));
    stream_log.append(b"event: c\ndata: 3\n\n");
    stream_log.close();
    let mut out = String::new();
    conn.read_to_string(&mut out).expect("read");
    assert!(out.contains("text/event-stream"), "got: {out}");
    let a = out.find("event: a").expect("chunk a");
    let b = out.find("event: b").expect("chunk b");
    let c = out.find("event: c").expect("chunk c");
    assert!(a < b && b < c, "events out of order: {out}");
    handle.shutdown();
}

#[test]
fn idle_stream_receives_ping_comments() {
    let stream_log = Arc::new(EventStream::new());
    let dispatch_log = Arc::clone(&stream_log);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(
        listener,
        Arc::new(move |_raw: Vec<u8>| Action::Stream {
            head:
                b"HTTP/1.1 200 OK\r\ncontent-type: text/event-stream\r\nconnection: close\r\n\r\n"
                    .to_vec(),
            stream: Arc::clone(&dispatch_log),
        }),
        quick_config(),
    )
    .expect("serve");
    let mut conn = TcpStream::connect(handle.local_addr()).expect("connect");
    conn.write_all(b"GET /events HTTP/1.1\r\n\r\n")
        .expect("write");
    conn.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    // No events arrive; after ping_interval the loop writes a comment.
    std::thread::sleep(Duration::from_millis(600));
    stream_log.close();
    let mut out = String::new();
    conn.read_to_string(&mut out).expect("read");
    assert!(out.contains(": ping"), "expected keep-alive comment: {out}");
    handle.shutdown();
}

#[test]
fn malformed_content_length_gets_400() {
    let handle = echo_server(quick_config());
    let resp = roundtrip(&handle, b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400 "), "got: {resp}");
    handle.shutdown();
}

#[test]
fn loop_stats_readers_cover_every_counter() {
    use smrseek_net::LoopStats;

    let stats = LoopStats::default();
    stats.accepted.fetch_add(2, Ordering::Relaxed);
    stats.accept_errors.fetch_add(3, Ordering::Relaxed);
    stats.active.fetch_add(5, Ordering::Relaxed);
    stats.reaped_idle.fetch_add(7, Ordering::Relaxed);
    stats.deferred.fetch_add(11, Ordering::Relaxed);
    stats.wakeups.fetch_add(13, Ordering::Relaxed);
    stats.streaming.fetch_add(17, Ordering::Relaxed);
    let readers = LoopStats::readers();
    let names: Vec<&str> = readers.iter().map(|(name, _)| *name).collect();
    assert_eq!(
        names,
        [
            "accepted",
            "accept_errors",
            "active",
            "reaped_idle",
            "deferred",
            "wakeups",
            "streaming"
        ]
    );
    let values: Vec<u64> = readers.iter().map(|(_, read)| read(&stats)).collect();
    assert_eq!(values, [2, 3, 5, 7, 11, 13, 17]);
}
