//! Adaptive mitigation policy: online heat classification and per-region
//! mechanism gating.
//!
//! The paper's three mitigation mechanisms (opportunistic defrag §IV-A,
//! look-ahead-behind prefetch §IV-B, selective caching §IV-C) run with
//! fixed global thresholds — and fixed defrag *regresses* write-churning
//! workloads (rewrites cost write seeks that later reads never repay).
//! This crate supplies the missing feedback loop:
//!
//! * a **classifier** buckets LBA space into fixed-size regions, each
//!   carrying integer EWMA read/write/fragmented-read rates and a two-state
//!   hot/cold machine smoothed HMM-style: evidence accumulates into a
//!   clamped log-odds score and the state only flips when the score crosses
//!   an entry/exit threshold, so one stray access never toggles a gate;
//! * a **policy engine** ([`PolicyEngine`]) consumes classifier state on
//!   every record and emits a per-region [`GateSet`] — enable/disable
//!   defrag rewrites, widen/narrow the prefetch window, admit/deny
//!   selective-cache fills — recording every decision and gate flip in a
//!   mergeable [`PolicyStats`].
//!
//! Everything is `std`-only integer arithmetic: classification is
//! deterministic, byte-stable across platforms, and cheap enough to sit on
//! the per-record hot path. The whole engine state is serde-serializable
//! (HashMaps serialize key-sorted), so snapshots resume byte-identically
//! and sharded replays can carry classifier state across boundary seeds.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fixed-point scale of the per-region EWMA rates (`1.0` == `SCALE`).
pub const SCALE: u32 = 1 << 16;

/// Classifier and gating thresholds.
///
/// The defaults are deliberately conservative: mechanisms stay enabled in
/// their fixed-configuration form until a region shows sustained evidence,
/// so a policy run on a workload with no exploitable skew degrades to the
/// combined fixed mechanisms rather than to something worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Region size in sectors; every LBA maps to region
    /// `sector / region_sectors`. Must be nonzero.
    pub region_sectors: u64,
    /// EWMA decay shift: each event moves a rate `1/2^shift` of the way
    /// toward its target, so smaller shifts adapt faster.
    pub ewma_shift: u32,
    /// Log-odds evidence contributed by one fragmented read (toward hot).
    pub frag_weight: i32,
    /// Log-odds evidence contributed by one write (toward cold).
    pub write_weight: i32,
    /// Score at or above which a cold region flips hot.
    pub hot_enter: i32,
    /// Score at or below which a hot region flips cold.
    pub hot_exit: i32,
    /// Scores are clamped to `[-score_clamp, score_clamp]` so a long cold
    /// (or hot) streak cannot build unbounded inertia — the HMM-style
    /// smoothing stays responsive.
    pub score_clamp: i32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            region_sectors: 8192, // 4 MiB regions
            ewma_shift: 3,
            frag_weight: 2,
            write_weight: 1,
            hot_enter: 4,
            hot_exit: -4,
            score_clamp: 8,
        }
    }
}

/// Prefetch window width the policy asks the translation layer to use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetchWindow {
    /// Half the configured look-ahead/behind window.
    Narrow,
    /// The configured window, unchanged (the fixed-mechanism behavior).
    #[default]
    Normal,
    /// Twice the configured window.
    Wide,
}

impl PrefetchWindow {
    /// Applies this width to a configured sector count.
    pub fn apply(self, sectors: u64) -> u64 {
        match self {
            PrefetchWindow::Narrow => sectors / 2,
            PrefetchWindow::Normal => sectors,
            PrefetchWindow::Wide => sectors * 2,
        }
    }
}

/// Per-region mechanism gates, as emitted for one record.
///
/// The default is fully permissive — exactly the fixed-mechanism behavior —
/// which is what a layer without a policy engine runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateSet {
    /// Perform opportunistic defrag rewrites for reads in this region.
    pub defrag: bool,
    /// Prefetch window width for fragments read from this region.
    pub prefetch: PrefetchWindow,
    /// Admit fragments of this region into the selective cache.
    pub cache_admit: bool,
}

impl Default for GateSet {
    fn default() -> Self {
        GateSet {
            defrag: true,
            prefetch: PrefetchWindow::Normal,
            cache_admit: true,
        }
    }
}

/// Hot/cold state of one region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Heat {
    /// No sustained fragmented-read evidence.
    #[default]
    Cold,
    /// Fragmented reads recur faster than writes churn the region.
    Hot,
}

/// Classifier state of one LBA region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionState {
    /// EWMA of the read fraction of this region's traffic (0..=[`SCALE`]).
    pub read_rate: u32,
    /// EWMA of the write fraction of this region's traffic.
    pub write_rate: u32,
    /// EWMA of the fragmented fraction of this region's reads.
    pub frag_rate: u32,
    /// Clamped log-odds hot-vs-cold evidence score.
    pub score: i32,
    /// Smoothed hot/cold state (flips only on threshold crossings).
    pub heat: Heat,
    /// Gates last emitted for this region (flip detection).
    pub gates: GateSet,
}

/// Pure event counts of one policy run.
///
/// Every field is an additive event count, so merging the stats of two
/// disjoint record ranges (each replayed from the correct classifier
/// state) equals counting the concatenated range — the same contract
/// `LsStats::merge` gives sharded replays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// Records the policy engine observed (= gate decisions emitted).
    pub records_observed: u64,
    /// Decisions that enabled defrag for the record's region.
    pub defrag_enabled: u64,
    /// Decisions that disabled defrag.
    pub defrag_denied: u64,
    /// Decisions that widened the prefetch window.
    pub prefetch_widened: u64,
    /// Decisions that narrowed the prefetch window.
    pub prefetch_narrowed: u64,
    /// Decisions that kept the configured prefetch window.
    pub prefetch_normal: u64,
    /// Decisions that admitted cache fills.
    pub cache_admitted: u64,
    /// Decisions that denied cache fills.
    pub cache_denied: u64,
    /// Times a region's defrag gate changed value.
    pub defrag_gate_flips: u64,
    /// Times a region's prefetch gate changed value.
    pub prefetch_gate_flips: u64,
    /// Times a region's cache gate changed value.
    pub cache_gate_flips: u64,
}

impl PolicyStats {
    /// Folds another run's counters into this one (fieldwise addition).
    pub fn merge(&mut self, other: &PolicyStats) {
        self.records_observed += other.records_observed;
        self.defrag_enabled += other.defrag_enabled;
        self.defrag_denied += other.defrag_denied;
        self.prefetch_widened += other.prefetch_widened;
        self.prefetch_narrowed += other.prefetch_narrowed;
        self.prefetch_normal += other.prefetch_normal;
        self.cache_admitted += other.cache_admitted;
        self.cache_denied += other.cache_denied;
        self.defrag_gate_flips += other.defrag_gate_flips;
        self.prefetch_gate_flips += other.prefetch_gate_flips;
        self.cache_gate_flips += other.cache_gate_flips;
    }

    /// Total gate flips across all three mechanisms.
    pub fn total_flips(&self) -> u64 {
        self.defrag_gate_flips + self.prefetch_gate_flips + self.cache_gate_flips
    }
}

/// Write-rate EWMA above which a cold region's cache fills are denied
/// (the region's data is churning; cached fragments would be invalidated
/// before they are re-read).
const WRITE_HOT: u32 = 3 * (SCALE / 4);

/// Fragmented-read EWMA below which a region counts as fragmentation-quiet.
/// Restrictive gates (narrow prefetch, cache-fill denial) only apply to
/// quiet regions: once fragmented reads recur — even cache-absorbed ones —
/// the read path is the one paying seeks, and starving it of its window or
/// its cache fills costs more than the churn it saves.
const FRAG_QUIET: u32 = SCALE / 16;

/// The online classifier plus gating policy.
///
/// Feed it every record that reaches the translation layer via
/// [`observe`](Self::observe) (which returns the gates the layer should
/// apply to that record), and report post-translation fragmentation
/// evidence via [`record_fragmented`](Self::record_fragmented) /
/// [`record_cache_absorbed`](Self::record_cache_absorbed). The struct
/// is pure state — cloning or serializing it and resuming produces
/// byte-identical gating decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyEngine {
    config: PolicyConfig,
    regions: HashMap<u64, RegionState>,
    stats: PolicyStats,
    /// Whether a selective cache is configured downstream (see
    /// [`set_cache_present`](Self::set_cache_present)).
    cache_present: bool,
}

impl PolicyEngine {
    /// A fresh engine; every region starts cold with permissive-but-gated
    /// defaults (see [`PolicyEngine::initial_gates`]).
    ///
    /// # Panics
    ///
    /// Panics if `config.region_sectors` is zero ([`smrseek_sim`]'s config
    /// builder reports this as a typed error before construction).
    pub fn new(config: PolicyConfig) -> Self {
        assert!(config.region_sectors > 0, "regions must be non-empty");
        PolicyEngine {
            config,
            regions: HashMap::new(),
            stats: PolicyStats::default(),
            cache_present: false,
        }
    }

    /// Tells the policy whether a selective cache sits downstream of its
    /// gates. Defrag rewrites and cache fills remedy the same symptom —
    /// recurring fragmented reads — but the cache absorbs them at zero
    /// media cost while every rewrite pays write seeks, and a rewrite
    /// destroys the fragmentation the cache would have kept monetizing
    /// (the mechanism-stacking ablation's defrag+cache regression). So
    /// with a cache present the policy reserves rewrites entirely and
    /// steers heat into the prefetch and admission gates instead; defrag
    /// is earned by hot regions only in cache-less configurations.
    pub fn set_cache_present(&mut self, present: bool) {
        self.cache_present = present;
    }

    /// The configuration this engine classifies under.
    pub fn config(&self) -> PolicyConfig {
        self.config
    }

    /// Decision and flip counters accumulated so far.
    pub fn stats(&self) -> PolicyStats {
        self.stats
    }

    /// Zeroes the accumulated counters, keeping classifier state intact.
    /// Sharded replays use this to normalize boundary seeds: gating
    /// *behavior* must carry across the boundary while *accounting*
    /// restarts at zero and merges back fieldwise.
    pub fn reset_stats(&mut self) {
        self.stats = PolicyStats::default();
    }

    /// Number of regions with classifier state.
    pub fn regions_tracked(&self) -> usize {
        self.regions.len()
    }

    /// Number of regions currently classified hot.
    pub fn hot_regions(&self) -> usize {
        self.regions
            .values()
            .filter(|r| r.heat == Heat::Hot)
            .count()
    }

    /// The region a sector belongs to.
    pub fn region_of(&self, sector: u64) -> u64 {
        sector / self.config.region_sectors
    }

    /// Classifier state of a region, if any traffic has touched it.
    pub fn region(&self, region: u64) -> Option<&RegionState> {
        self.regions.get(&region)
    }

    /// The gates a never-observed region starts under: defrag *disabled*
    /// (rewrites must be earned by evidence — this is what prevents the
    /// static-defrag regressions), everything else at the fixed-mechanism
    /// defaults.
    pub fn initial_gates() -> GateSet {
        GateSet {
            defrag: false,
            ..GateSet::default()
        }
    }

    /// Observes one record and returns the gates to apply to it.
    ///
    /// The returned decision is computed from state *prior* to this
    /// record's own fragmentation evidence (which arrives afterwards via
    /// [`record_fragmented`](Self::record_fragmented)), so replaying a
    /// prefix and resuming reproduces the same decisions.
    pub fn observe(&mut self, lba_sector: u64, is_read: bool) -> GateSet {
        let shift = self.config.ewma_shift;
        let write_weight = self.config.write_weight;
        let clamp = self.config.score_clamp;
        let (hot_enter, hot_exit) = (self.config.hot_enter, self.config.hot_exit);
        let region = self.region_of(lba_sector);
        let state = self.regions.entry(region).or_insert_with(|| RegionState {
            gates: Self::initial_gates(),
            ..RegionState::default()
        });
        if is_read {
            ewma(&mut state.read_rate, true, shift);
            ewma(&mut state.write_rate, false, shift);
            // The read's own fragmentation outcome is not known yet;
            // decay here, record_fragmented bumps it back up.
            ewma(&mut state.frag_rate, false, shift);
        } else {
            ewma(&mut state.read_rate, false, shift);
            ewma(&mut state.write_rate, true, shift);
            state.score = (state.score - write_weight).clamp(-clamp, clamp);
        }
        step_heat(state, hot_enter, hot_exit);

        let quiet = state.frag_rate < FRAG_QUIET;
        let gates = GateSet {
            defrag: state.heat == Heat::Hot && !self.cache_present,
            prefetch: match state.heat {
                Heat::Hot => PrefetchWindow::Wide,
                Heat::Cold if quiet && state.score <= -2 && state.write_rate > state.read_rate => {
                    PrefetchWindow::Narrow
                }
                Heat::Cold => PrefetchWindow::Normal,
            },
            cache_admit: !(state.heat == Heat::Cold && quiet && state.write_rate > WRITE_HOT),
        };
        if gates.defrag != state.gates.defrag {
            self.stats.defrag_gate_flips += 1;
        }
        if gates.prefetch != state.gates.prefetch {
            self.stats.prefetch_gate_flips += 1;
        }
        if gates.cache_admit != state.gates.cache_admit {
            self.stats.cache_gate_flips += 1;
        }
        state.gates = gates;

        self.stats.records_observed += 1;
        if gates.defrag {
            self.stats.defrag_enabled += 1;
        } else {
            self.stats.defrag_denied += 1;
        }
        match gates.prefetch {
            PrefetchWindow::Narrow => self.stats.prefetch_narrowed += 1,
            PrefetchWindow::Normal => self.stats.prefetch_normal += 1,
            PrefetchWindow::Wide => self.stats.prefetch_widened += 1,
        }
        if gates.cache_admit {
            self.stats.cache_admitted += 1;
        } else {
            self.stats.cache_denied += 1;
        }
        gates
    }

    /// Feeds back that the read starting at `lba_sector` turned out
    /// fragmented *and paid physical I/O* — the evidence that makes a
    /// region hot (its fragmentation is costing seeks nothing else
    /// mitigates).
    pub fn record_fragmented(&mut self, lba_sector: u64) {
        self.frag_feedback(lba_sector, self.config.frag_weight);
    }

    /// Feeds back that a fragmented read was served entirely from the
    /// selective cache or prefetch buffer — no physical read. Evidence
    /// *against* defragmentation: the cheaper mechanisms already absorb
    /// this region's fragmentation, so rewrites would spend write seeks
    /// the reads never repay (the defrag+cache regression).
    pub fn record_cache_absorbed(&mut self, lba_sector: u64) {
        self.frag_feedback(lba_sector, -self.config.frag_weight);
    }

    fn frag_feedback(&mut self, lba_sector: u64, weight: i32) {
        let shift = self.config.ewma_shift;
        let clamp = self.config.score_clamp;
        let (hot_enter, hot_exit) = (self.config.hot_enter, self.config.hot_exit);
        let region = self.region_of(lba_sector);
        let state = self.regions.entry(region).or_insert_with(|| RegionState {
            gates: Self::initial_gates(),
            ..RegionState::default()
        });
        ewma(&mut state.frag_rate, true, shift);
        state.score = (state.score + weight).clamp(-clamp, clamp);
        step_heat(state, hot_enter, hot_exit);
    }
}

/// Moves `rate` `1/2^shift` of the way toward [`SCALE`] (`toward` true) or
/// zero.
fn ewma(rate: &mut u32, toward: bool, shift: u32) {
    if toward {
        *rate += (SCALE - *rate) >> shift;
    } else {
        *rate -= *rate >> shift;
    }
}

/// Applies the hysteresis thresholds to a region's score.
fn step_heat(state: &mut RegionState, hot_enter: i32, hot_exit: i32) {
    match state.heat {
        Heat::Cold if state.score >= hot_enter => state.heat = Heat::Hot,
        Heat::Hot if state.score <= hot_exit => state.heat = Heat::Cold,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PolicyEngine {
        PolicyEngine::new(PolicyConfig::default())
    }

    #[test]
    fn fresh_region_starts_cold_with_defrag_denied() {
        let mut e = engine();
        let gates = e.observe(0, true);
        assert!(!gates.defrag, "defrag must be earned by evidence");
        assert_eq!(gates.prefetch, PrefetchWindow::Normal);
        assert!(gates.cache_admit);
        assert_eq!(e.hot_regions(), 0);
        assert_eq!(e.regions_tracked(), 1);
    }

    #[test]
    fn recurring_fragmented_reads_flip_a_region_hot() {
        let mut e = engine();
        for _ in 0..3 {
            e.observe(100, true);
            e.record_fragmented(100);
        }
        let gates = e.observe(100, true);
        assert!(gates.defrag, "3 fragmented reads = score 6 >= enter 4");
        assert_eq!(gates.prefetch, PrefetchWindow::Wide);
        assert_eq!(e.hot_regions(), 1);
        assert_eq!(e.stats().defrag_gate_flips, 1);
    }

    #[test]
    fn writes_cool_a_hot_region_with_hysteresis() {
        let mut e = engine();
        for _ in 0..4 {
            e.observe(100, true);
            e.record_fragmented(100);
        }
        assert!(e.observe(100, true).defrag);
        // Score is clamped at +8; hysteresis needs 12 write units to
        // reach the -4 exit, so a couple of writes do not flip it...
        for _ in 0..3 {
            assert!(e.observe(100, false).defrag, "hysteresis holds");
        }
        // ...but a sustained write burst does.
        for _ in 0..12 {
            e.observe(100, false);
        }
        assert!(!e.observe(100, true).defrag);
        assert_eq!(e.hot_regions(), 0);
        assert!(e.stats().defrag_gate_flips >= 2, "on and back off");
    }

    #[test]
    fn write_churned_cold_region_denies_cache_fills() {
        let mut e = engine();
        for _ in 0..40 {
            e.observe(100, false);
        }
        let gates = e.observe(100, false);
        assert!(!gates.cache_admit, "pure-write region denies fills");
        assert_eq!(gates.prefetch, PrefetchWindow::Narrow);
        // A read-only region keeps admitting.
        for _ in 0..40 {
            assert!(e.observe(1 << 30, true).cache_admit);
        }
    }

    #[test]
    fn cache_absorbed_reads_hold_defrag_off() {
        // Fragmented reads that the cache keeps absorbing are evidence
        // against rewrites: alternating miss/hit feedback never
        // accumulates to the hot-entry threshold.
        let mut e = engine();
        for _ in 0..20 {
            e.observe(100, true);
            e.record_fragmented(100);
            e.observe(100, true);
            e.record_cache_absorbed(100);
        }
        assert_eq!(e.hot_regions(), 0, "absorbed reads cancel the evidence");
        assert!(!e.observe(100, true).defrag);
        // Without the absorption feedback the same misses flip it hot.
        let mut uncached = engine();
        for _ in 0..3 {
            uncached.observe(100, true);
            uncached.record_fragmented(100);
        }
        assert!(uncached.observe(100, true).defrag);
    }

    #[test]
    fn regions_are_independent() {
        let mut e = engine();
        let far = PolicyConfig::default().region_sectors; // next region
        for _ in 0..4 {
            e.observe(0, true);
            e.record_fragmented(0);
        }
        assert!(e.observe(0, true).defrag);
        assert!(!e.observe(far, true).defrag);
        assert_eq!(e.regions_tracked(), 2);
    }

    #[test]
    fn decision_and_flip_counters_account_every_record() {
        let mut e = engine();
        for i in 0..10 {
            e.observe(i * 8, i % 2 == 0);
        }
        let s = e.stats();
        assert_eq!(s.records_observed, 10);
        assert_eq!(s.defrag_enabled + s.defrag_denied, 10);
        assert_eq!(
            s.prefetch_widened + s.prefetch_narrowed + s.prefetch_normal,
            10
        );
        assert_eq!(s.cache_admitted + s.cache_denied, 10);
    }

    #[test]
    fn stats_merge_is_fieldwise_addition() {
        let mut a = PolicyStats {
            records_observed: 1,
            defrag_enabled: 2,
            defrag_denied: 3,
            prefetch_widened: 4,
            prefetch_narrowed: 5,
            prefetch_normal: 6,
            cache_admitted: 7,
            cache_denied: 8,
            defrag_gate_flips: 9,
            prefetch_gate_flips: 10,
            cache_gate_flips: 11,
        };
        let b = PolicyStats {
            records_observed: 100,
            ..a
        };
        a.merge(&b);
        assert_eq!(a.records_observed, 101);
        assert_eq!(a.defrag_enabled, 4);
        assert_eq!(a.cache_gate_flips, 22);
        assert_eq!(a.total_flips(), 18 + 20 + 22);
    }

    #[test]
    fn split_replay_with_reset_stats_merges_to_straight_through() {
        // The sharding contract: carry state, zero counters, merge.
        let events: Vec<(u64, bool, bool)> = (0..200)
            .map(|i| (i % 7 * 9000, i % 3 != 0, i % 5 == 0))
            .collect();
        let run = |e: &mut PolicyEngine, evs: &[(u64, bool, bool)]| {
            for &(sector, is_read, frag) in evs {
                e.observe(sector, is_read);
                if is_read && frag {
                    e.record_fragmented(sector);
                }
            }
        };
        let mut whole = engine();
        run(&mut whole, &events);

        let mut split = engine();
        run(&mut split, &events[..90]);
        let mut total = split.stats();
        split.reset_stats();
        run(&mut split, &events[90..]);
        total.merge(&split.stats());
        assert_eq!(total, whole.stats());
        split.reset_stats();
        let mut normalized = whole.clone();
        normalized.reset_stats();
        assert_eq!(split, normalized, "classifier state carries exactly");
    }

    #[test]
    fn serde_round_trip_preserves_behavior() {
        let mut e = engine();
        for i in 0..50 {
            e.observe(i * 5000, i % 2 == 0);
            if i % 4 == 0 {
                e.record_fragmented(i * 5000);
            }
        }
        let json = serde_json::to_string(&e).expect("serializes");
        let mut back: PolicyEngine = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, e);
        // Same future decisions from the restored state.
        assert_eq!(back.observe(12345, true), e.observe(12345, true));
        assert_eq!(
            serde_json::to_string(&back).expect("serializes"),
            serde_json::to_string(&e).expect("serializes"),
            "serialization is canonical (sorted regions)"
        );
    }

    #[test]
    fn prefetch_window_scales() {
        assert_eq!(PrefetchWindow::Narrow.apply(512), 256);
        assert_eq!(PrefetchWindow::Normal.apply(512), 512);
        assert_eq!(PrefetchWindow::Wide.apply(512), 1024);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_region_panics() {
        PolicyEngine::new(PolicyConfig {
            region_sectors: 0,
            ..PolicyConfig::default()
        });
    }
}
