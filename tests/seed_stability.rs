//! The paper-facing conclusions must not depend on the generator seed:
//! across several seeds, the headline classifications and mechanism
//! orderings hold.

use smrseek::sim::{Saf, SimConfig, Simulation};
use smrseek::workloads::profiles;

const SEEDS: [u64; 3] = [11, 222, 3333];
const OPS: usize = 5000;

fn saf(name: &str, seed: u64, config: &SimConfig) -> f64 {
    let trace = profiles::by_name(name)
        .expect("profile exists")
        .generate_scaled(seed, OPS);
    let base = Simulation::new(&SimConfig::no_ls()).run_trace(&trace).seeks;
    Saf::from_stats(&Simulation::new(config).run_trace(&trace).seeks, &base).total
}

#[test]
fn w91_is_log_sensitive_for_every_seed() {
    for seed in SEEDS {
        let ls = saf("w91", seed, &SimConfig::log_structured());
        assert!(ls > 1.5, "seed {seed}: w91 LS SAF {ls:.2}");
        let cached = saf("w91", seed, &SimConfig::ls_cache());
        assert!(
            cached < ls / 2.0,
            "seed {seed}: cache {cached:.2} vs LS {ls:.2}"
        );
    }
}

#[test]
fn write_intensive_stays_log_friendly_for_every_seed() {
    for seed in SEEDS {
        for name in ["mds_0", "w36", "rsrch_0"] {
            let ls = saf(name, seed, &SimConfig::log_structured());
            assert!(ls < 0.6, "seed {seed}: {name} LS SAF {ls:.2}");
        }
    }
}

#[test]
fn defrag_hurts_w20_for_every_seed() {
    for seed in SEEDS {
        let ls = saf("w20", seed, &SimConfig::log_structured());
        let defrag = saf("w20", seed, &SimConfig::ls_defrag());
        assert!(defrag > ls, "seed {seed}: defrag {defrag:.2} vs LS {ls:.2}");
    }
}

#[test]
fn prefetch_helps_w84_for_every_seed() {
    for seed in SEEDS {
        let ls = saf("w84", seed, &SimConfig::log_structured());
        let prefetch = saf("w84", seed, &SimConfig::ls_prefetch());
        assert!(
            prefetch < ls,
            "seed {seed}: prefetch {prefetch:.2} vs LS {ls:.2}"
        );
    }
}

#[test]
fn cache_never_hurts_for_every_seed() {
    for seed in SEEDS {
        for name in ["hm_1", "w95", "usr_0"] {
            let ls = saf(name, seed, &SimConfig::log_structured());
            let cached = saf(name, seed, &SimConfig::ls_cache());
            assert!(
                cached <= ls + 1e-9,
                "seed {seed}: {name} cache {cached:.2} vs LS {ls:.2}"
            );
        }
    }
}
