//! Model-based tests for the finite cleaning log: translation must stay
//! correct through arbitrary churn and cleaning, and the valid-sector
//! accounting must agree with the extent map.

use proptest::prelude::*;
use smrseek::stl::{CleanerConfig, CleaningLog, TranslationLayer};
use smrseek::trace::{Lba, Pba, TraceRecord};
use std::collections::HashMap;

const SPACE: u64 = 600; // logical sectors (kept < usable log capacity)
const LOG_START: u64 = 1 << 20;

fn log() -> CleaningLog {
    // 16 segments x 100 sectors, reserve 2 -> plenty of headroom for a
    // 600-sector logical space at <50% utilization.
    CleaningLog::new(CleanerConfig::new(Pba::new(LOG_START), 100, 16))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After arbitrary writes (which force arbitrary cleanings), every
    /// sector still reads back from wherever its newest version lives,
    /// and written sectors always read from inside the log region.
    #[test]
    fn translation_survives_cleaning(
        writes in prop::collection::vec((0..SPACE, 1..50u64), 1..120)
    ) {
        let mut log = log();
        let mut model: HashMap<u64, u64> = HashMap::new(); // sector -> version
        let mut version = 0u64;
        for (i, &(lba, len)) in writes.iter().enumerate() {
            let len = len.min(SPACE - lba).max(1);
            version += 1;
            log.apply(&TraceRecord::write(
                i as u64,
                Lba::new(lba),
                u32::try_from(len).unwrap(),
            ));
            for s in lba..lba + len {
                model.insert(s, version);
            }
        }
        // Every written sector must be mapped into the log; unwritten
        // sectors must fall through to identity.
        for sector in 0..SPACE {
            let ios = log.apply(&TraceRecord::read(u64::MAX, Lba::new(sector), 1));
            prop_assert_eq!(ios.len(), 1);
            let pba = ios[0].pba.sector();
            if model.contains_key(&sector) {
                prop_assert!(
                    pba >= LOG_START,
                    "written sector {} reads from identity {}",
                    sector,
                    pba
                );
            } else {
                prop_assert_eq!(pba, sector, "unwritten sector moved");
            }
        }
    }

    /// The valid-sector accounting always equals the mapped-sector count
    /// of the extent map, and utilization stays within bounds.
    #[test]
    fn valid_accounting_matches_map(
        writes in prop::collection::vec((0..SPACE, 1..50u64), 1..120)
    ) {
        let mut log = log();
        for (i, &(lba, len)) in writes.iter().enumerate() {
            let len = len.min(SPACE - lba).max(1);
            log.apply(&TraceRecord::write(
                i as u64,
                Lba::new(lba),
                u32::try_from(len).unwrap(),
            ));
            prop_assert_eq!(
                log.live_sectors(),
                log.map_mapped_sectors(),
                "valid accounting diverged after write {}",
                i
            );
            prop_assert!(log.utilization() <= 1.0);
        }
        // WAF is always >= 1 once anything was written.
        prop_assert!(log.stats().waf() >= 1.0);
    }

    /// Distinct logical sectors never map to the same physical sector.
    #[test]
    fn no_physical_aliasing(
        writes in prop::collection::vec((0..SPACE, 1..50u64), 1..80)
    ) {
        let mut log = log();
        for (i, &(lba, len)) in writes.iter().enumerate() {
            let len = len.min(SPACE - lba).max(1);
            log.apply(&TraceRecord::write(
                i as u64,
                Lba::new(lba),
                u32::try_from(len).unwrap(),
            ));
        }
        let mut seen: HashMap<u64, u64> = HashMap::new(); // pba -> lba
        for sector in 0..SPACE {
            let ios = log.apply(&TraceRecord::read(u64::MAX, Lba::new(sector), 1));
            let pba = ios[0].pba.sector();
            if pba >= LOG_START {
                if let Some(&other) = seen.get(&pba) {
                    prop_assert!(false, "lba {} and {} alias pba {}", other, sector, pba);
                }
                seen.insert(pba, sector);
            }
        }
    }
}
