//! Model-based correctness tests for the log-structured layer: a
//! sector-granular reference model tracks where the newest version of
//! every logical sector must live; the layer's translation must agree
//! after arbitrary write/read sequences.

use proptest::prelude::*;
use smrseek::stl::{LogStructured, LsConfig, TranslationLayer};
use smrseek::trace::{Lba, OpKind, Pba, TraceRecord};
use std::collections::HashMap;

const SPACE: u64 = 4096; // logical sectors
const FRONTIER: u64 = 1 << 20;

#[derive(Debug, Clone)]
enum Op {
    Write { lba: u64, len: u64 },
    Read { lba: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (0..SPACE, 1..64u64).prop_map(|(lba, len)| Op::Write { lba, len }),
        1 => (0..SPACE, 1..128u64).prop_map(|(lba, len)| Op::Read { lba, len }),
    ]
}

/// Reference: logical sector -> physical sector of its newest version.
/// Unwritten sectors live at their identity location.
#[derive(Default)]
struct Model {
    sectors: HashMap<u64, u64>,
    frontier: u64,
}

impl Model {
    fn new() -> Self {
        Model {
            sectors: HashMap::new(),
            frontier: FRONTIER,
        }
    }

    fn write(&mut self, lba: u64, len: u64) {
        for i in 0..len {
            self.sectors.insert(lba + i, self.frontier + i);
        }
        self.frontier += len;
    }

    fn location(&self, sector: u64) -> u64 {
        self.sectors.get(&sector).copied().unwrap_or(sector)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every physical run returned by a read covers exactly the sectors
    /// the model says, in logical order, with no gaps and no overlap.
    #[test]
    fn reads_fetch_newest_versions(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut ls = LogStructured::new(LsConfig::new(Lba::new(FRONTIER)));
        let mut model = Model::new();
        let mut t = 0u64;
        for op in &ops {
            t += 1;
            match *op {
                Op::Write { lba, len } => {
                    let ios = ls.apply(&TraceRecord::write(
                        t, Lba::new(lba), u32::try_from(len).unwrap(),
                    ));
                    prop_assert_eq!(ios.len(), 1);
                    prop_assert_eq!(ios[0].pba, Pba::new(model.frontier));
                    model.write(lba, len);
                }
                Op::Read { lba, len } => {
                    let ios = ls.apply(&TraceRecord::read(
                        t, Lba::new(lba), u32::try_from(len).unwrap(),
                    ));
                    // Walk the returned runs against the model sector by
                    // sector, in logical order.
                    let mut logical = lba;
                    for io in &ios {
                        prop_assert_eq!(io.op, OpKind::Read);
                        for k in 0..io.sectors {
                            prop_assert_eq!(
                                io.pba.sector() + k,
                                model.location(logical),
                                "logical sector {} of read {}..{}",
                                logical, lba, lba + len
                            );
                            logical += 1;
                        }
                    }
                    prop_assert_eq!(logical, lba + len, "runs must tile the read");
                }
            }
        }
    }

    /// The frontier only ever advances, by exactly the written volume.
    #[test]
    fn frontier_is_monotone(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut ls = LogStructured::new(LsConfig::new(Lba::new(FRONTIER)));
        let mut written = 0u64;
        let mut t = 0u64;
        for op in &ops {
            t += 1;
            match *op {
                Op::Write { lba, len } => {
                    ls.apply(&TraceRecord::write(t, Lba::new(lba), u32::try_from(len).unwrap()));
                    written += len;
                }
                Op::Read { lba, len } => {
                    ls.apply(&TraceRecord::read(t, Lba::new(lba), u32::try_from(len).unwrap()));
                }
            }
            prop_assert_eq!(ls.frontier(), Pba::new(FRONTIER + written));
        }
    }

    /// Physical runs returned by a read are maximal: no two consecutive
    /// runs are physically adjacent (they would have been merged).
    #[test]
    fn runs_are_maximal(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut ls = LogStructured::new(LsConfig::new(Lba::new(FRONTIER)));
        let mut t = 0u64;
        for op in &ops {
            t += 1;
            if let Op::Write { lba, len } = *op {
                ls.apply(&TraceRecord::write(t, Lba::new(lba), u32::try_from(len).unwrap()));
            }
        }
        for &(lba, len) in &[(0u64, 256u64), (SPACE / 2, 512), (SPACE - 64, 64)] {
            let runs = ls.physical_runs(Lba::new(lba), len);
            let total: u64 = runs.iter().map(|&(_, l)| l).sum();
            prop_assert_eq!(total, len);
            for pair in runs.windows(2) {
                prop_assert_ne!(
                    pair[0].0.sector() + pair[0].1,
                    pair[1].0.sector(),
                    "adjacent runs must be merged"
                );
            }
        }
    }

    /// Mechanisms never change *what* is read, only *where from*: with a
    /// selective cache, the sectors fetched from disk plus those served
    /// from cache must cover each read exactly.
    #[test]
    fn cache_preserves_read_coverage(ops in prop::collection::vec(op_strategy(), 1..60)) {
        use smrseek::stl::CacheConfig;
        let mut plain = LogStructured::new(LsConfig::new(Lba::new(FRONTIER)));
        let mut cached = LogStructured::new(
            LsConfig::new(Lba::new(FRONTIER)).with_cache(CacheConfig::default()),
        );
        let mut t = 0u64;
        for op in &ops {
            t += 1;
            let rec = match *op {
                Op::Write { lba, len } => {
                    TraceRecord::write(t, Lba::new(lba), u32::try_from(len).unwrap())
                }
                Op::Read { lba, len } => {
                    TraceRecord::read(t, Lba::new(lba), u32::try_from(len).unwrap())
                }
            };
            let plain_ios = plain.apply(&rec);
            let cached_ios = cached.apply(&rec);
            // Cached runs are a subset of plain runs (hits disappear).
            for io in &cached_ios {
                prop_assert!(
                    plain_ios.contains(io),
                    "cached layer fetched {io} which plain layer would not"
                );
            }
            prop_assert!(cached_ios.len() <= plain_ios.len());
        }
        // Cache hits + misses == fragments seen by the plain layer.
        let p = plain.stats();
        let c = cached.stats();
        prop_assert_eq!(p.fragmented_reads, c.fragmented_reads);
    }
}

#[test]
fn frontier_starts_where_configured() {
    let ls = LogStructured::new(LsConfig::new(Lba::new(777)));
    assert_eq!(ls.frontier(), Pba::new(777));
    assert!(ls.map().is_empty());
}
