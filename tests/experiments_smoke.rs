//! Smoke test: every experiment module runs end-to-end at a tiny scale
//! and renders non-empty output. Guards the full experiment surface (the
//! per-module tests check correctness; this checks nothing is wired up
//! wrong across the workspace).

use smrseek::sim::experiments::{
    ablation, analyze, classify, cleaning, fig10, fig11, fig2, fig3, fig4, fig5, fig7, fig8,
    fragmentation, host_cache, reorder, table1, time_amp, zones, ExpOptions,
};

fn opts() -> ExpOptions {
    ExpOptions { seed: 1, ops: 1200 }
}

#[test]
fn every_experiment_runs_and_renders() {
    let opts = opts();
    let outputs: Vec<(&str, String)> = vec![
        ("table1", table1::render(&table1::run(&opts))),
        ("fig2", fig2::render(&fig2::run(&opts))),
        ("fig3", fig3::render(&fig3::run(&opts))),
        ("fig4", fig4::render(&fig4::run(&opts))),
        ("fig5", fig5::render(&fig5::run(&opts))),
        ("fig7", fig7::render(&fig7::run(&opts))),
        ("fig8", fig8::render(&fig8::run(&opts))),
        ("fig10", fig10::render(&fig10::run(&opts))),
        ("fig11", fig11::render(&fig11::run(&opts))),
        ("classify", classify::render(&classify::run(&opts))),
        ("analyze", analyze::render(&analyze::run(&opts))),
        (
            "fragmentation",
            fragmentation::render(&fragmentation::run(&opts)),
        ),
        ("ablation", ablation::render(&ablation::run(&opts))),
        ("time_amp", time_amp::render(&time_amp::run(&opts))),
        ("host_cache", host_cache::render(&host_cache::run(&opts))),
        ("cleaning", cleaning::render(&cleaning::run(&opts))),
        (
            "cleaning_policies",
            cleaning::render_policies(&cleaning::compare_policies(&opts)),
        ),
        ("reorder", reorder::render(&reorder::run(&opts))),
        ("zones", zones::render(&zones::run(&opts))),
    ];
    for (name, text) in outputs {
        assert!(
            text.lines().count() >= 3,
            "{name}: suspiciously short output:\n{text}"
        );
        assert!(!text.contains("NaN"), "{name}: NaN leaked into output");
    }
}

#[test]
fn json_serialization_of_every_result_type() {
    let opts = opts();
    // Every experiment result must serialize (the CLI's --json path).
    serde_json::to_string(&table1::run(&opts)).expect("table1");
    serde_json::to_string(&fig2::run(&opts)).expect("fig2");
    serde_json::to_string(&fig3::run(&opts)).expect("fig3");
    serde_json::to_string(&fig4::run(&opts)).expect("fig4");
    serde_json::to_string(&fig5::run(&opts)).expect("fig5");
    serde_json::to_string(&fig7::run(&opts)).expect("fig7");
    serde_json::to_string(&fig8::run(&opts)).expect("fig8");
    serde_json::to_string(&fig10::run(&opts)).expect("fig10");
    serde_json::to_string(&fig11::run(&opts)).expect("fig11");
    serde_json::to_string(&classify::run(&opts)).expect("classify");
    serde_json::to_string(&analyze::run(&opts)).expect("analyze");
    serde_json::to_string(&fragmentation::run(&opts)).expect("fragmentation");
    serde_json::to_string(&zones::run(&opts)).expect("zones");
    serde_json::to_string(&reorder::run(&opts)).expect("reorder");
}

#[test]
fn plotdata_exports_from_the_facade() {
    let dir = std::env::temp_dir().join(format!("smrseek_smoke_{}", std::process::id()));
    let files = smrseek::sim::plotdata::export_all(&opts(), &dir).expect("export");
    assert_eq!(files.len(), 8);
    std::fs::remove_dir_all(&dir).ok();
}
