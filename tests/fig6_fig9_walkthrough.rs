//! Step-by-step reproductions of the paper's two worked examples:
//!
//! * **Fig 6** — opportunistic defragmentation on a 6-LBA log: updates
//!   fragment LBAs 1..6; a read of 2..5 incurs three extra seeks; the
//!   defragmented rewrite makes the re-read seek-free; and a later read of
//!   1..2 pays one extra seek *because* of the defragmentation.
//! * **Fig 9** — look-ahead-behind prefetching: updates to LBAs 3, 2, 4
//!   land mis-ordered in the log; a read of 1..5 incurs four extra seeks;
//!   with prefetching the re-read serves LBAs 3 and 4 from the buffer.
//!
//! The paper's figures use 1-indexed LBAs 1..6; we use sectors 0..6.

use smrseek::disk::{PhysIo, SeekCounter};
use smrseek::stl::{DefragConfig, LogStructured, LsConfig, PrefetchConfig, TranslationLayer};
use smrseek::trace::{Lba, OpKind, Pba, TraceRecord};

const FRONTIER: u64 = 1000;

fn seeks_of(ios: &[PhysIo], counter: &mut SeekCounter) -> u64 {
    let before = counter.stats().total();
    for io in ios {
        counter.observe(io);
    }
    counter.stats().total() - before
}

/// Initial state shared by both figures: LBAs 0..6 contiguous at the start
/// of the log.
fn log_with_initial_extent(config: LsConfig) -> (LogStructured, SeekCounter) {
    let mut ls = LogStructured::new(config);
    let mut counter = SeekCounter::new();
    let ios = ls.apply(&TraceRecord::write(0, Lba::new(0), 6));
    seeks_of(&ios, &mut counter);
    (ls, counter)
}

#[test]
fn fig6_defragmentation_walkthrough() {
    let config = LsConfig::new(Lba::new(FRONTIER)).with_defrag(DefragConfig::default());
    let (mut ls, mut counter) = log_with_initial_extent(config);

    // (A) Wr 3 and (B) Wr 5 — two single-sector updates append to the log.
    for (t, lba) in [(1, 2u64), (2, 4u64)] {
        let ios = ls.apply(&TraceRecord::write(t, Lba::new(lba), 1));
        assert_eq!(ios.len(), 1);
        assert_eq!(ios[0].op, OpKind::Write);
        seeks_of(&ios, &mut counter);
    }

    // (C) Rd 2-5: the range is now [1..2)@orig, [2..3)@log, [3..4)@orig,
    // [4..5)@log — four pieces, i.e. three seeks beyond the first.
    let ios = ls.apply(&TraceRecord::read(3, Lba::new(1), 4));
    let reads: Vec<&PhysIo> = ios.iter().filter(|io| io.op == OpKind::Read).collect();
    assert_eq!(reads.len(), 4, "fragmented read splits into four pieces");

    // (D) defragment: the same apply() already appended the rewrite.
    let writes: Vec<&PhysIo> = ios.iter().filter(|io| io.op == OpKind::Write).collect();
    assert_eq!(writes.len(), 1, "opportunistic defragmentation rewrites");
    assert_eq!(writes[0].sectors, 4);
    assert_eq!(
        writes[0].pba,
        Pba::new(FRONTIER + 8),
        "rewrite goes to the frontier"
    );
    seeks_of(&ios, &mut counter);
    assert_eq!(ls.stats().defrag_rewrites, 1);

    // (E) Rd 2-5 again: now a single contiguous piece, zero extra seeks
    // beyond the one seek to reach it.
    let ios = ls.apply(&TraceRecord::read(4, Lba::new(1), 4));
    assert_eq!(ios.len(), 1, "defragmented range reads in one piece");
    assert_eq!(seeks_of(&ios, &mut counter), 1);

    // (F) Rd 1-2: the defragmentation *split* LBAs 0..2 — the figure's
    // point that defragmentation is not free. Reading 0..2 now takes two
    // pieces where the original layout had one.
    let ios = ls.apply(&TraceRecord::read(5, Lba::new(0), 2));
    assert_eq!(
        ios.iter().filter(|io| io.op == OpKind::Read).count(),
        2,
        "read of 1..2 incurs an extra seek as a result of defragmentation"
    );
}

#[test]
fn fig6_without_defrag_keeps_paying() {
    // Control: with plain LS, the (E) re-read pays the three extra seeks
    // every time.
    let (mut ls, _) = log_with_initial_extent(LsConfig::new(Lba::new(FRONTIER)));
    ls.apply(&TraceRecord::write(1, Lba::new(2), 1));
    ls.apply(&TraceRecord::write(2, Lba::new(4), 1));
    for t in 3..6 {
        let ios = ls.apply(&TraceRecord::read(t, Lba::new(1), 4));
        assert_eq!(ios.len(), 4, "fragmentation persists without defrag");
    }
    assert_eq!(ls.stats().defrag_rewrites, 0);
}

#[test]
fn fig9_prefetch_walkthrough() {
    let config = LsConfig::new(Lba::new(FRONTIER)).with_prefetch(PrefetchConfig {
        behind_sectors: 8,
        ahead_sectors: 8,
        buffer_bytes: 1 << 20,
    });
    let (mut ls, _counter) = log_with_initial_extent(config);

    // (A)(B)(C): update LBAs 3, 2, 4 — they land at log offsets 6, 7, 8 in
    // *dispatch* order, not LBA order (mis-ordered writes).
    for (t, lba) in [(1, 3u64), (2, 2u64), (3, 4u64)] {
        let ios = ls.apply(&TraceRecord::write(t, Lba::new(lba), 1));
        assert_eq!(ios[0].pba, Pba::new(FRONTIER + 6 + (t - 1)));
    }

    // (D) Rd 1-5 (sectors 0..5): pieces are [0..2)@log+0, 2@log+7,
    // 3@log+6, 4@log+8 — four pieces, i.e. four seeks without prefetching
    // (the control test below). With look-ahead-behind, the enlarged read
    // around the first piece covers the whole 9-sector neighbourhood where
    // the mis-ordered updates landed, so every other fragment is served
    // from the buffer: the paper's "LBA 3 and LBA 4 are prefetched upon
    // reading LBA 2", taken to its limit by the shared window.
    let ios = ls.apply(&TraceRecord::read(4, Lba::new(0), 5));
    assert_eq!(
        ios.len(),
        1,
        "look-ahead-behind collapses the mis-ordered fragments: {ios:?}"
    );
    assert_eq!(
        ls.stats().prefetch_hit_fragments,
        3,
        "LBAs 2, 3 and 4 served from the buffer"
    );

    // (D') another read of the same range: everything is still buffered.
    let ios = ls.apply(&TraceRecord::read(5, Lba::new(0), 5));
    assert!(
        ios.is_empty(),
        "re-read is fully served from the buffer: {ios:?}"
    );
}

#[test]
fn fig9_without_prefetch_pays_four_extra_seeks() {
    // Control: plain LS pays one physical read per piece.
    let (mut ls, mut counter) = log_with_initial_extent(LsConfig::new(Lba::new(FRONTIER)));
    for (t, lba) in [(1, 3u64), (2, 2u64), (3, 4u64)] {
        ls.apply(&TraceRecord::write(t, Lba::new(lba), 1));
    }
    let ios = ls.apply(&TraceRecord::read(4, Lba::new(0), 5));
    assert_eq!(ios.len(), 4, "four pieces: {ios:?}");
    // The paper counts 5 seeks for this read in total (including reaching
    // the range); our head is at the log frontier after the writes, so all
    // four pieces seek.
    assert_eq!(seeks_of(&ios, &mut counter), 4);
}
