//! Cross-crate invariants of the simulation engine, checked over the full
//! profile suite and over randomized workloads.

use proptest::prelude::*;
use smrseek::sim::{Saf, SimConfig, Simulation};
use smrseek::trace::{Lba, TraceRecord};
use smrseek::workloads::profiles;

fn quick(profile_name: &str) -> Vec<TraceRecord> {
    profiles::by_name(profile_name)
        .expect("profile exists")
        .generate_scaled(13, 4000)
}

#[test]
fn simulation_is_deterministic() {
    let trace = quick("w95");
    for config in [
        SimConfig::no_ls(),
        SimConfig::log_structured(),
        SimConfig::ls_defrag(),
        SimConfig::ls_prefetch(),
        SimConfig::ls_cache(),
    ] {
        let a = Simulation::new(&config).run_trace(&trace);
        let b = Simulation::new(&config).run_trace(&trace);
        assert_eq!(a.seeks, b.seeks, "{}", a.layer_name);
    }
}

#[test]
fn ls_write_seeks_bounded_by_read_interruptions() {
    // Under plain LS, writes only seek when something moved the head away
    // from the frontier — so write seeks <= logical reads + 1.
    for profile in profiles::all() {
        let trace = profile.generate_scaled(3, 3000);
        let report = Simulation::new(&SimConfig::log_structured()).run_trace(&trace);
        let reads = trace.iter().filter(|r| r.op.is_read()).count() as u64;
        assert!(
            report.seeks.write_seeks <= reads + 1,
            "{}: {} write seeks vs {} reads",
            profile.name,
            report.seeks.write_seeks,
            reads
        );
    }
}

#[test]
fn cache_and_prefetch_never_add_seeks() {
    for name in ["w91", "hm_1", "w20", "mds_0", "w84"] {
        let trace = quick(name);
        let ls = Simulation::new(&SimConfig::log_structured())
            .run_trace(&trace)
            .seeks;
        let cached = Simulation::new(&SimConfig::ls_cache())
            .run_trace(&trace)
            .seeks;
        let prefetched = Simulation::new(&SimConfig::ls_prefetch())
            .run_trace(&trace)
            .seeks;
        assert!(
            cached.total() <= ls.total(),
            "{name}: cache {} > LS {}",
            cached.total(),
            ls.total()
        );
        assert!(
            prefetched.total() <= ls.total(),
            "{name}: prefetch {} > LS {}",
            prefetched.total(),
            ls.total()
        );
    }
}

#[test]
fn defrag_adds_write_seeks_but_bounded() {
    for name in ["w91", "w20"] {
        let trace = quick(name);
        let ls = Simulation::new(&SimConfig::log_structured()).run_trace(&trace);
        let defrag = Simulation::new(&SimConfig::ls_defrag()).run_trace(&trace);
        let rewrites = defrag.ls_stats.unwrap().defrag_rewrites;
        assert!(rewrites > 0, "{name}: expected rewrites");
        // Each rewrite costs at most one extra write seek plus one extra
        // read seek (returning to the data); reads it saves come off.
        assert!(
            defrag.seeks.total() <= ls.seeks.total() + 2 * rewrites,
            "{name}: defrag total {} vs LS {} + 2*{}",
            defrag.seeks.total(),
            ls.seeks.total(),
            rewrites
        );
    }
}

#[test]
fn saf_of_baseline_is_one() {
    let trace = quick("w33");
    let base = Simulation::new(&SimConfig::no_ls()).run_trace(&trace).seeks;
    let saf = Saf::from_stats(&base, &base);
    assert!((saf.total - 1.0).abs() < 1e-12);
    assert!((saf.read - 1.0).abs() < 1e-12);
    assert!((saf.write - 1.0).abs() < 1e-12);
}

#[test]
fn report_counters_are_consistent() {
    for name in ["w91", "usr_0"] {
        let trace = quick(name);
        let report = Simulation::new(&SimConfig::log_structured().with_fragment_tracking())
            .run_trace(&trace);
        let ls = report.ls_stats.expect("LS run has layer stats");
        assert_eq!(
            ls.logical_reads + ls.logical_writes,
            report.logical_ops,
            "{name}"
        );
        assert_eq!(
            report.seeks.ops,
            ls.phys_reads + ls.phys_writes,
            "{name}: physical op accounting"
        );
        let fragments = report.fragments.expect("tracking enabled");
        assert_eq!(
            fragments.fragmented_read_count() as u64,
            ls.fragmented_reads,
            "{name}: tracker and counter agree"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On arbitrary small traces: total seeks never exceed physical ops,
    /// long seeks never exceed seeks, and the engine never panics.
    #[test]
    fn seek_accounting_bounds(
        ops in prop::collection::vec(
            (0u64..100_000, 1u32..64, prop::bool::ANY),
            1..200,
        )
    ) {
        let trace: Vec<TraceRecord> = ops
            .iter()
            .enumerate()
            .map(|(i, &(lba, len, is_read))| {
                if is_read {
                    TraceRecord::read(i as u64, Lba::new(lba), len)
                } else {
                    TraceRecord::write(i as u64, Lba::new(lba), len)
                }
            })
            .collect();
        for config in [
            SimConfig::no_ls(),
            SimConfig::log_structured(),
            SimConfig::ls_defrag(),
            SimConfig::ls_prefetch(),
            SimConfig::ls_cache(),
        ] {
            let report = Simulation::new(&config).run_trace(&trace);
            let s = report.seeks;
            prop_assert!(s.total() <= s.ops, "{}: seeks > ops", report.layer_name);
            prop_assert!(s.total_long() <= s.total());
            prop_assert!(s.long_read_seeks <= s.read_seeks);
            prop_assert!(s.long_write_seeks <= s.write_seeks);
        }
    }

    /// NoLS seek counts must equal a direct computation from the trace.
    #[test]
    fn nols_matches_direct_count(
        ops in prop::collection::vec((0u64..10_000, 1u32..32, prop::bool::ANY), 1..100)
    ) {
        let trace: Vec<TraceRecord> = ops
            .iter()
            .enumerate()
            .map(|(i, &(lba, len, is_read))| {
                if is_read {
                    TraceRecord::read(i as u64, Lba::new(lba), len)
                } else {
                    TraceRecord::write(i as u64, Lba::new(lba), len)
                }
            })
            .collect();
        let report = Simulation::new(&SimConfig::no_ls()).run_trace(&trace);
        let mut expected_read = 0u64;
        let mut expected_write = 0u64;
        let mut next = Lba::new(0);
        for rec in &trace {
            if rec.lba != next {
                if rec.op.is_read() {
                    expected_read += 1;
                } else {
                    expected_write += 1;
                }
            }
            next = rec.end();
        }
        prop_assert_eq!(report.seeks.read_seeks, expected_read);
        prop_assert_eq!(report.seeks.write_seeks, expected_write);
    }
}
