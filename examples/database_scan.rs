//! The paper's worst-case scenario, built by hand: a database file receives
//! many small random updates, then is sequentially scanned N times (§III's
//! "sequential read after random write" thought experiment).
//!
//! Demonstrates building traces directly with `TraceBuilder` instead of
//! using a named profile, and shows the N-fold seek amplification the
//! paper predicts — plus how each mechanism responds.
//!
//! ```sh
//! cargo run --release --example database_scan
//! ```

use smrseek::sim::{Saf, SimConfig, Simulation};
use smrseek::trace::{Lba, MIB, SECTOR_SIZE};
use smrseek::workloads::TraceBuilder;

fn scenario(scans: usize) -> Vec<smrseek::trace::TraceRecord> {
    let db_sectors = 64 * MIB / SECTOR_SIZE; // a 64 MiB "database file"
    let mut b = TraceBuilder::new(7);
    // The file exists before the trace: the disk model places pre-trace
    // data at its identity location, so we can start with updates.
    b.write_random(Lba::new(0), db_sectors, 4_000, 16); // 8 KiB updates
    for _ in 0..scans {
        b.read_scan(Lba::new(0), db_sectors, 256); // 128 KiB scan reads
    }
    b.finish()
}

fn main() {
    println!("random updates to a 64 MiB file, then N full sequential scans\n");
    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "scans", "NoLS", "LS seeks", "LS", "defrag", "prefetch", "cache"
    );
    for scans in [1, 2, 4, 8] {
        let trace = scenario(scans);
        let base = Simulation::new(&SimConfig::no_ls()).run_trace(&trace);
        let saf = |config: &SimConfig| {
            Saf::from_stats(
                &Simulation::new(config).run_trace(&trace).seeks,
                &base.seeks,
            )
            .total
        };
        let ls = Simulation::new(&SimConfig::log_structured()).run_trace(&trace);
        println!(
            "{:<8} {:>10} {:>10} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            scans,
            base.seeks.total(),
            ls.seeks.total(),
            saf(&SimConfig::log_structured()),
            saf(&SimConfig::ls_defrag()),
            saf(&SimConfig::ls_prefetch()),
            saf(&SimConfig::ls_cache()),
        );
    }

    println!();
    println!("Each additional scan re-pays the fragmentation cost, so plain-LS SAF");
    println!("grows with N (the paper's N-fold amplification). Opportunistic");
    println!("defragmentation pays once — on the first scan — and the remaining");
    println!("scans are sequential; selective caching absorbs repeats in RAM.");
}
