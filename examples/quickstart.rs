//! Quickstart: measure seek amplification of one workload and see how each
//! seek-reduction mechanism changes it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smrseek::sim::{Saf, SimConfig, Simulation};
use smrseek::workloads::profiles;

fn main() {
    // 1. Pick a workload. `w91` is the paper's most log-sensitive trace:
    //    repeated sequential scans over a randomly-updated region.
    let profile = profiles::by_name("w91").expect("w91 is a Table-I profile");
    let trace = profile.generate_scaled(42, 20_000);
    println!(
        "workload {} ({}): {} operations",
        profile.name,
        profile.family,
        trace.len()
    );

    // 2. Establish the conventional-drive baseline (NoLS).
    let baseline = Simulation::new(&SimConfig::no_ls()).run_trace(&trace);
    println!(
        "NoLS baseline: {} read seeks, {} write seeks",
        baseline.seeks.read_seeks, baseline.seeks.write_seeks
    );

    // 3. Replay through log-structured translation and the mechanisms.
    for config in [
        SimConfig::log_structured(),
        SimConfig::ls_defrag(),
        SimConfig::ls_prefetch(),
        SimConfig::ls_cache(),
    ] {
        let report = Simulation::new(&config).run_trace(&trace);
        let saf = Saf::from_stats(&report.seeks, &baseline.seeks);
        println!(
            "{:<12} {:>7} read seeks  {:>6} write seeks  SAF {:.2}",
            report.layer_name, report.seeks.read_seeks, report.seeks.write_seeks, saf.total
        );
        if let Some(ls) = report.ls_stats {
            if ls.defrag_rewrites + ls.cache_hit_fragments + ls.prefetch_hit_fragments > 0 {
                println!(
                    "             ({} defrag rewrites, {} cache hits, {} prefetch hits)",
                    ls.defrag_rewrites, ls.cache_hit_fragments, ls.prefetch_hit_fragments
                );
            }
        }
    }

    println!();
    println!("A SAF above 1 means log-structured translation costs extra seeks;");
    println!("selective caching should bring w91 well below its plain-LS value.");
}
