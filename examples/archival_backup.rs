//! The archival scenario that motivates the paper's conclusion: a backup
//! target accumulates data and never deletes it, so a log-structured SMR
//! translation layer never needs cleaning — and with seek reduction, the
//! SMR performance penalty can disappear entirely.
//!
//! Compares three translation strategies on the same ingest-then-restore
//! workload:
//!
//! * `NoLS`     — conventional update-in-place (what a CMR drive does),
//! * `LS`       — log-structured with full extent map (cleaning-free),
//! * `MediaCache` — the simple STL shipped drives use (§II), which keeps
//!   data in LBA order at the price of read-modify-write merges.
//!
//! ```sh
//! cargo run --release --example archival_backup
//! ```

use smrseek::disk::{PhysIo, SeekCounter};
use smrseek::stl::{
    LogStructured, LsConfig, MediaCacheConfig, MediaCacheStl, NoLs, TranslationLayer,
};
use smrseek::trace::{Lba, Pba, TraceRecord, GIB, MIB, SECTOR_SIZE};
use smrseek::workloads::TraceBuilder;

/// Nightly backup: mostly-sequential ingest of new data, a few metadata
/// updates in place, then a verification pass reading yesterday's data.
fn backup_workload() -> Vec<TraceRecord> {
    let mut b = TraceBuilder::new(99);
    let day_sectors = 48 * MIB / SECTOR_SIZE;
    for day in 0..6u64 {
        let day_base = Lba::new(day * day_sectors);
        // Ingest: two interleaved streams (parallel backup jobs).
        b.write_interleaved(day_base, 2, 3_000, 64);
        // Catalog updates: small random writes to a fixed metadata region.
        let catalog = Lba::new(8 * GIB / SECTOR_SIZE);
        b.write_random(catalog, 4 * MIB / SECTOR_SIZE, 200, 8);
        // Verification: sequential read-back of what was just written.
        b.read_scan(day_base, 3_000 * 64, 256);
    }
    b.finish()
}

fn drive<L: TranslationLayer>(mut layer: L, trace: &[TraceRecord]) -> (String, u64, u64, u64) {
    let mut counter = SeekCounter::new();
    let mut media_write_sectors = 0u64;
    for rec in trace {
        for io in layer.apply(rec) {
            if io.op.is_write() {
                media_write_sectors += io.sectors;
            }
            counter.observe(&io);
        }
    }
    let stats = counter.stats();
    (
        layer.name().to_owned(),
        stats.read_seeks,
        stats.write_seeks,
        media_write_sectors,
    )
}

fn main() {
    let trace = backup_workload();
    let host_write_sectors: u64 = trace
        .iter()
        .filter(|r| r.op.is_write())
        .map(|r| u64::from(r.sectors))
        .sum();
    println!(
        "6-day backup cycle: {} ops, {:.1} GiB ingested\n",
        trace.len(),
        host_write_sectors as f64 * SECTOR_SIZE as f64 / GIB as f64
    );
    println!(
        "{:<12} {:>11} {:>11} {:>8}",
        "layer", "read seeks", "write seeks", "WAF"
    );

    let results = vec![
        drive(NoLs::new(), &trace),
        drive(LogStructured::new(LsConfig::for_trace(&trace)), &trace),
        drive(
            MediaCacheStl::new(MediaCacheConfig::new(
                Pba::new(16 * GIB / SECTOR_SIZE),
                64 * MIB / SECTOR_SIZE,
            )),
            &trace,
        ),
    ];
    for (name, read_seeks, write_seeks, media_writes) in results {
        println!(
            "{:<12} {:>11} {:>11} {:>8.2}",
            name,
            read_seeks,
            write_seeks,
            media_writes as f64 / host_write_sectors as f64
        );
    }

    println!();
    println!("The log-structured layer matches conventional read seeks on this");
    println!("append-mostly workload while eliminating write seeks, at WAF 1.0 —");
    println!("no cleaning is ever needed on an archival target. The media-cache");
    println!("STL also reads well, but pays a large write amplification for its");
    println!("read-modify-write merges.");

    // Tiny sanity check so the example fails loudly if the layers regress.
    let identity = PhysIo::read(Pba::new(0), 1);
    assert!(identity.op.is_read());
}
