//! The zoned-device substrate in action: how ZBC-style zone guard bands
//! change the log's physical layout, and how the geometry model prices
//! seeks across the platter.
//!
//! ```sh
//! cargo run --release --example smr_zones
//! ```

use smrseek::disk::{DiskGeometry, DiskProfile, SeekCounter, ZonedDevice};
use smrseek::stl::{LogStructured, LsConfig, TranslationLayer};
use smrseek::trace::{Lba, Pba, MIB, SECTOR_SIZE};
use smrseek::workloads::TraceBuilder;

fn main() {
    // --- Part 1: a raw zoned device ---
    let mut dev = ZonedDevice::new(8, 256 * MIB / SECTOR_SIZE);
    println!(
        "zoned device: {} zones x {} MiB = {} GiB",
        dev.zone_count(),
        dev.zone_sectors() * SECTOR_SIZE / MIB,
        dev.capacity_sectors() * SECTOR_SIZE / (1 << 30),
    );
    let runs = dev.append(300 * MIB / SECTOR_SIZE).expect("fits");
    println!(
        "appending 300 MiB crosses a zone boundary: {} physically-separate runs\n",
        runs.len()
    );

    // --- Part 2: the same workload on flat vs zoned-backed logs ---
    let mut b = TraceBuilder::new(7);
    b.write_random(Lba::new(0), 64 * MIB / SECTOR_SIZE, 3_000, 64);
    let mut scan = b;
    scan.read_scan(Lba::new(0), 64 * MIB / SECTOR_SIZE, 256);
    let trace = scan.finish();

    for (name, zone) in [
        ("infinite flat log", None),
        ("zoned log (64 MiB zones)", Some(64 * MIB / SECTOR_SIZE)),
    ] {
        let mut config = LsConfig::for_trace(&trace);
        config.zone_sectors = zone;
        let mut ls = LogStructured::new(config);
        let mut counter = SeekCounter::new();
        for rec in &trace {
            for io in ls.apply(rec) {
                counter.observe(&io);
            }
        }
        println!(
            "{name:<26} {} seeks ({} reads fragmented of {})",
            counter.stats().total(),
            ls.stats().fragmented_reads,
            ls.stats().logical_reads,
        );
    }
    println!();

    // --- Part 3: geometry-aware seek pricing ---
    let geo = DiskGeometry::zbr(1 << 31, 4096, 1800, 16); // ~1 TiB, 16 ZBR zones
    let profile = DiskProfile::default();
    println!(
        "ZBR geometry: {} cylinders, outer tracks {} sectors, inner {}",
        geo.cylinders(),
        geo.zones().first().unwrap().sectors_per_track,
        geo.zones().last().unwrap().sectors_per_track,
    );
    // Average over many target offsets so rotational phase (up to one
    // full rotation of noise per sample) cancels out.
    let span = 1u64 << 24; // an 8 GiB hop
    let samples = 128u64;
    let mean_hop = |from: u64| -> f64 {
        (0..samples)
            .map(|i| {
                let to = from + span + i * 1000;
                geo.seek_time_us(&profile, Pba::new(from), Pba::new(to))
                    .expect("in range")
            })
            .sum::<f64>()
            / samples as f64
    };
    let outer = mean_hop(0);
    let inner = mean_hop(geo.capacity_sectors() - span - samples * 1000 - 1);
    println!(
        "an 8 GiB hop costs {outer:.0} us on average near the outer diameter but \
         {inner:.0} us\nnear the spindle (the same byte distance spans more cylinders \
         where tracks are short)."
    );
    assert!(inner > outer);
}
