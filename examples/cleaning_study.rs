//! The trade-off the paper's infinite-disk model side-steps: on a finite
//! log, cleaning cost explodes with utilization (the classic LFS result),
//! while the archival regime — never overwrite, never clean — keeps WAF at
//! exactly 1. This study reproduces both regimes with the finite
//! `CleaningLog` and compares seeks with the infinite-disk layer.
//!
//! ```sh
//! cargo run --release --example cleaning_study
//! ```

use smrseek::sim::experiments::{cleaning, ExpOptions};
use smrseek::stl::{CleanerConfig, CleaningLog, TranslationLayer};
use smrseek::trace::{Lba, Pba, TraceRecord};

fn main() {
    // Part 1: utilization sweep under steady random overwrites.
    let opts = ExpOptions {
        seed: 42,
        ops: 6_000,
    };
    print!("{}", cleaning::render(&cleaning::run(&opts)));
    println!();

    // Part 2: the archival regime — append-only ingest never cleans.
    let mut log = CleaningLog::new(CleanerConfig::new(Pba::new(1 << 30), 2048, 64));
    let capacity = 64 * 2048u64;
    let mut written = 0u64;
    let mut t = 0u64;
    // Ingest until ~70% of the effective capacity, never overwriting.
    while written < capacity * 6 / 10 {
        t += 1;
        log.apply(&TraceRecord::write(t, Lba::new(written), 256));
        written += 256;
    }
    println!("archival regime (append-only ingest, no overwrites):");
    println!(
        "  utilization {:.0}%, WAF {:.2}, cleanings {}",
        100.0 * log.utilization(),
        log.stats().waf(),
        log.stats().cleanings
    );
    assert_eq!(log.stats().cleanings, 0, "append-only must never clean");
    println!();
    println!("Steady overwrites force copying that grows sharply with utilization,");
    println!("while archival ingest stays at WAF 1.00 with zero cleanings — the");
    println!("regime in which the paper's seek-reduction techniques can remove the");
    println!("last SMR performance penalty.");
}
