//! Working with external traces: generate a synthetic workload, export it
//! in both supported CSV schemas plus the compact binary format, parse
//! each back, and verify the roundtrips — then characterize and simulate
//! the parsed trace exactly as the `smrseek characterize` / `simulate`
//! commands would.
//!
//! This is the path a user with real MSR Cambridge or CloudPhysics-style
//! traces follows: drop the file in, parse, simulate.
//!
//! ```sh
//! cargo run --release --example trace_roundtrip
//! ```

use smrseek::sim::{Saf, SimConfig, Simulation};
use smrseek::trace::binary::{read_binary, write_binary};
use smrseek::trace::characterize;
use smrseek::trace::parse::{parse_reader, CpParser, MsrParser};
use smrseek::trace::writer::{write_cp_csv, write_msr_csv};
use smrseek::workloads::profiles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = profiles::by_name("hm_1")
        .expect("hm_1 is a Table-I profile")
        .generate_scaled(1, 10_000);

    // --- CloudPhysics CSV roundtrip ---
    let mut cp_csv = Vec::new();
    write_cp_csv(&mut cp_csv, &trace)?;
    let parsed = parse_reader(&cp_csv[..], CpParser::new())?;
    assert_eq!(parsed, trace, "CP CSV roundtrip must be lossless");
    println!(
        "CP CSV: {} bytes for {} records",
        cp_csv.len(),
        parsed.len()
    );

    // --- MSR CSV roundtrip ---
    // The MSR parser normalizes timestamps to the first record, so the
    // roundtrip is exact up to a constant time shift.
    let mut msr_csv = Vec::new();
    write_msr_csv(&mut msr_csv, &trace, "synthhost", 0)?;
    let parsed = parse_reader(&msr_csv[..], MsrParser::with_disk(0))?;
    let t0 = trace[0].timestamp_us;
    assert!(
        parsed.len() == trace.len()
            && parsed.iter().zip(&trace).all(|(p, o)| {
                p.timestamp_us == o.timestamp_us - t0
                    && (p.op, p.lba, p.sectors) == (o.op, o.lba, o.sectors)
            }),
        "MSR CSV roundtrip must be lossless modulo the time origin"
    );
    println!("MSR CSV: {} bytes", msr_csv.len());

    // --- binary roundtrip ---
    let mut bin = Vec::new();
    write_binary(&mut bin, &trace)?;
    let parsed = read_binary(&bin[..])?;
    assert_eq!(parsed, trace, "binary roundtrip must be lossless");
    println!(
        "binary: {} bytes ({:.1}x smaller than CP CSV)\n",
        bin.len(),
        cp_csv.len() as f64 / bin.len() as f64
    );

    // --- characterize + simulate the parsed trace ---
    let stats = characterize(&parsed);
    println!("characteristics: {stats}");
    println!(
        "footprint {:.1} MiB, sequentiality {:.1}%, write ratio {:.1}%\n",
        stats.footprint_sectors as f64 / 2048.0,
        100.0 * stats.sequentiality(),
        100.0 * stats.write_ratio()
    );

    let base = Simulation::new(&SimConfig::no_ls()).run_trace(&parsed);
    for config in [SimConfig::log_structured(), SimConfig::ls_cache()] {
        let report = Simulation::new(&config).run_trace(&parsed);
        let saf = Saf::from_stats(&report.seeks, &base.seeks);
        println!("{:<9} {saf}", report.layer_name);
    }
    Ok(())
}
