//! Regenerates the paper's evaluation tables and figures in one shot, as a
//! library-level example (the `smrseek` CLI offers the same per-figure).
//!
//! ```sh
//! cargo run --release --example paper_figures            # quick (8k ops)
//! cargo run --release --example paper_figures -- 40000   # paper scale
//! ```

use smrseek::sim::experiments::{
    ablation, fig10, fig11, fig2, fig3, fig4, fig5, fig7, fig8, table1, ExpOptions,
};

fn main() {
    let ops = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);
    let opts = ExpOptions { seed: 42, ops };
    eprintln!("running all experiments at {ops} ops per workload...");

    print!("{}", table1::render(&table1::run(&opts)));
    println!();
    print!("{}", fig2::render(&fig2::run(&opts)));
    print!("{}", fig3::render(&fig3::run(&opts)));
    println!();
    print!("{}", fig4::render(&fig4::run(&opts)));
    println!();
    print!("{}", fig5::render(&fig5::run(&opts)));
    println!();
    print!("{}", fig7::render(&fig7::run(&opts)));
    println!();
    print!("{}", fig8::render(&fig8::run(&opts)));
    println!();
    print!("{}", fig10::render(&fig10::run(&opts)));
    println!();
    print!("{}", fig11::render(&fig11::run(&opts)));
    print!("{}", ablation::render(&ablation::run(&opts)));
}
