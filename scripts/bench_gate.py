#!/usr/bin/env python3
"""Perf-trajectory gate: fresh `smrseek bench --json` vs the last committed BENCH_*.json.

Usage:
    python3 scripts/bench_gate.py FRESH.json [--baseline BENCH_N.json]
                                  [--threshold 0.15]

Compares the throughput numbers that matter for trend tracking — ingest
records/s and each config's serial + best-sharded replay records/s —
against the newest committed ``BENCH_<n>.json`` (or an explicit
``--baseline``). Any metric more than ``--threshold`` (default 15%) below
its baseline fails the gate with exit 1 so a perf regression cannot land
silently.

Mirrors the bench harness's own caveat: on a 1-CPU host (either side of
the comparison) wall-clock numbers are too noisy for a hard gate, so the
script prints the same warning the harness does and skips with exit 0.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def newest_baseline() -> Path:
    benches = {}
    for p in REPO.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", p.name)
        if m:
            benches[int(m.group(1))] = p
    if not benches:
        sys.exit("bench_gate: no committed BENCH_*.json to compare against")
    return benches[max(benches)]


def throughputs(doc: dict) -> dict[str, float]:
    """Flattens a bench document to {metric name: records/s}."""
    out = {"ingest": doc["ingest"]["records_per_s"]}
    for cfg in doc["configs"]:
        name = cfg["config"]
        out[f"{name}/serial"] = cfg["serial"]["records_per_s"]
        sharded = cfg.get("sharded") or []
        if sharded:
            out[f"{name}/best-sharded"] = max(s["records_per_s"] for s in sharded)
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", type=Path, help="JSON from a fresh `smrseek bench --json`")
    ap.add_argument("--baseline", type=Path, default=None, help="committed BENCH_*.json (default: newest)")
    ap.add_argument("--threshold", type=float, default=0.15, help="allowed fractional regression (default 0.15)")
    args = ap.parse_args()

    baseline_path = args.baseline or newest_baseline()
    fresh = json.loads(args.fresh.read_text())
    baseline = json.loads(baseline_path.read_text())

    cpus = min(fresh.get("host_cpus", 0), baseline.get("host_cpus", 0))
    if cpus <= 1:
        # Same caveat the bench harness prints: single-CPU wall clock is
        # noise-dominated, so the 15% gate would flap. Trend numbers are
        # still recorded; the gate just does not fail on them.
        print(
            "bench_gate: warning: host has 1 CPU; timings are too noisy "
            "for a regression gate — skipping comparison "
            f"({args.fresh} vs {baseline_path.name})"
        )
        return 0

    fresh_tp = throughputs(fresh)
    base_tp = throughputs(baseline)
    failures = []
    for name in sorted(base_tp):
        if name not in fresh_tp:
            print(f"bench_gate: note: {name} missing from fresh run, skipped")
            continue
        ratio = fresh_tp[name] / base_tp[name]
        verdict = "REGRESSED" if ratio < 1.0 - args.threshold else "ok"
        print(f"bench_gate: {name}: {fresh_tp[name]:.0f} rec/s vs {base_tp[name]:.0f} ({ratio:.2f}x) {verdict}")
        if verdict == "REGRESSED":
            failures.append(name)

    if failures:
        print(
            f"bench_gate: FAIL: {len(failures)} metric(s) more than "
            f"{args.threshold:.0%} below {baseline_path.name}: {', '.join(failures)}"
        )
        return 1
    print(f"bench_gate: ok: no metric regressed >{args.threshold:.0%} vs {baseline_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
