//! Offline stand-in for `serde`.
//!
//! This build environment has no crates.io access, so the workspace
//! vendors a minimal, self-contained replacement exposing the same
//! *names* the codebase uses (`Serialize`, `Deserialize`, the derive
//! macros) while being value-tree based instead of visitor based:
//!
//! * [`Serialize`] converts a value into a [`Value`] tree.
//! * [`Deserialize`] reconstructs a value from a [`Value`] tree.
//! * The companion `serde_json` stand-in renders/parses [`Value`]
//!   trees as JSON with serde_json-compatible formatting.
//!
//! The subset implemented is exactly what this workspace needs; it is
//! not a general-purpose serde replacement. If registry access ever
//! returns, deleting `[patch.crates-io]` from the workspace manifest
//! restores the real crates with no source changes.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Module alias so generated/user code can say `serde::de::Error`.
pub mod de {
    pub use super::Error;
}

/// A JSON-shaped value tree.
///
/// Object fields preserve insertion order (matching how serde_json
/// streams struct fields in declaration order), which keeps JSON
/// output deterministic and stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Value {
    /// Builds the externally-tagged enum encoding `{"tag": inner}`.
    pub fn variant(tag: &str, inner: Value) -> Value {
        Value::Object(vec![(tag.to_string(), inner)])
    }

    /// Returns the array elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Returns the string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the boolean if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number as `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u),
            Value::Number(Number::I(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Returns the number as `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(i)) => Some(*i),
            Value::Number(Number::U(u)) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// Returns the number as `f64` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F(f)) => Some(*f),
            Value::Number(Number::U(u)) => Some(*u as f64),
            Value::Number(Number::I(i)) => Some(*i as f64),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Object field lookup that errors (for derived `Deserialize`).
    pub fn expect_field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(o) => o
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{key}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{key}`, got {other:?}"
            ))),
        }
    }

    /// Array item lookup that errors (for derived tuple `Deserialize`).
    pub fn expect_item(&self, index: usize, len: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(a) if a.len() == len => Ok(&a[index]),
            other => Err(Error::custom(format!(
                "expected array of length {len}, got {other:?}"
            ))),
        }
    }

    /// Destructures a single-entry object into `(tag, inner)` — the
    /// externally-tagged enum encoding.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(o) if o.len() == 1 => Some((o[0].0.as_str(), &o[0].1)),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(index)).unwrap_or(&NULL)
    }
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

/// Converts `self` into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))
            }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::Number(Number::U(i as u64)) } else { Value::Number(Number::I(i)) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for &'static str {
    /// Always errors: an owned value tree cannot yield borrowed
    /// strings (matches real serde's behaviour for owned input).
    fn from_value(v: &Value) -> Result<Self, Error> {
        Err(Error::custom(format!(
            "cannot deserialize borrowed &str from owned value {v:?}"
        )))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected array of {N}, got {}", items.len())))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                Ok(($($t::from_value(v.expect_item($n, LEN)?)?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Conversion between map keys and JSON object-key strings.
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom(format!(
                    concat!("invalid ", stringify!($t), " map key {:?}"), key)))
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output (HashMap iteration order is
        // seeded per process).
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(entries.into_iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}
