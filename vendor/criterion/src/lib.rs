//! Offline stand-in for `criterion`.
//!
//! Provides the names the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher`,
//! `criterion_group!`, `criterion_main!`, `black_box` — backed by a
//! simple wall-clock timer: each benchmark runs a short warm-up, then
//! `sample_size` timed batches, and prints min/mean per-iteration time
//! (plus throughput when configured). No statistics, plots, or
//! baseline comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, None, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter` ids.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }
}

/// Conversion into a benchmark id (accepts `&str`, `String`, `BenchmarkId`).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Units for reporting throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for per-element reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_bench(&full, self.throughput, self.criterion.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    // Warm-up and calibration: find an iteration count that takes
    // roughly 25ms per sample, capped to keep total time bounded.
    let mut calib = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut calib);
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(25).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        min = min.min(per);
        total += per;
    }
    let mean = total / sample_size as u32;
    let mut line = format!(
        "{id:<48} time: [min {} mean {}] ({} samples x {} iters)",
        fmt_duration(min),
        fmt_duration(mean),
        sample_size,
        iters
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if count > 0 && mean.as_nanos() > 0 {
            let rate = count as f64 / mean.as_secs_f64();
            line.push_str(&format!("  thrpt: {rate:.0} {unit}/s"));
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
