//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `proptest!`, `prop_assert*!`, `prop_oneof!`, `Strategy` with
//! `prop_map`/`boxed`, range/tuple strategies, `prop::collection::vec`
//! and `prop::bool::ANY` — as a deterministic random-case runner.
//!
//! Differences from upstream: no shrinking (failures report the raw
//! case), no persistence of regression files, and the case stream for
//! a given test differs from the real crate. Tests remain fully
//! deterministic: the per-test RNG is seeded from the test name.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (`cases` only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Builds a config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic per-test RNG (xoshiro256++ seeded from the name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the RNG from a test name, so every test draws an
        /// independent but reproducible case stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = h;
            let mut s = [0u64; 4];
            for slot in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, span)` via multiply-shift.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between strategies of one value type
    /// (the engine behind `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, strategy) in &self.arms {
                if pick < *weight as u64 {
                    return strategy.gen_value(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weight accounting")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Length bounds for [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max_exclusive: n + 1 }
            }
        }

        impl From<::std::ops::Range<usize>> for SizeRange {
            fn from(r: ::std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { min: r.start, max_exclusive: r.end }
            }
        }

        impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
            }
        }

        /// Strategy generating vectors of `element` draws.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates `Vec`s with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min) as u64;
                let len = self.size.min + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.gen_value(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn gen_value(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests; see the crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($bind:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case_index in 0..config.cases {
                    $(let $bind = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    let case_debug = format!(
                        concat!($(concat!(stringify!($bind), " = {:?}, ")),+),
                        $(&$bind),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}\n  (offline proptest stub: no shrinking)",
                            stringify!($name), case_index, config.cases, e, case_debug,
                        );
                    }
                }
            }
        )*
    };
}

/// Property-test assertion; returns an error instead of panicking so
/// the runner can report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r,
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)+), l, r,
                );
            }
        }
    };
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l,
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: `{} != {}`: {}\n  both: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)+), l,
                );
            }
        }
    };
}

/// Weighted (or unweighted) choice between strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
