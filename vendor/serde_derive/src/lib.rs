//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde` crate's simplified `Serialize` /
//! `Deserialize` traits (which are value-tree based rather than
//! visitor based). The derive parses the item's token stream directly
//! — no `syn`/`quote`, because this build environment has no registry
//! access — and supports the subset of shapes this workspace uses:
//!
//! * structs with named fields
//! * tuple structs (including `#[serde(transparent)]` newtypes)
//! * unit structs
//! * enums whose variants are unit, tuple, or struct-like
//!
//! Generics are intentionally unsupported; deriving on a generic type
//! is a compile error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the vendored `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    let mut transparent = false;

    // Leading attributes (doc comments, #[serde(...)], ...) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if attr_is_serde_transparent(g.stream()) {
                        transparent = true;
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let item_kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive stub: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive stub: generic type `{name}` is not supported (vendored offline serde)");
        }
    }

    let kind = match item_kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde derive stub: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive stub: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde derive stub: cannot derive for item kind `{other}`"),
    };

    Input { name, transparent, kind }
}

fn attr_is_serde_transparent(stream: TokenStream) -> bool {
    // Matches the bracket-group contents `serde(transparent)`.
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            if inner.iter().any(|t| t == "transparent") {
                return true;
            }
            if let Some(unknown) = inner.iter().find(|t| {
                t.chars().next().is_some_and(|c| c.is_alphabetic()) && *t != "transparent"
            }) {
                panic!("serde derive stub: unsupported serde attribute `{unknown}`");
            }
            false
        }
        _ => false,
    }
}

/// Splits a field/variant list on top-level commas, treating `<...>` type
/// arguments (bare puncts in the token stream) as nested.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' {
                    // `->` in fn-pointer types must not close an angle bracket.
                    if !prev_dash && angle_depth > 0 {
                        angle_depth -= 1;
                    }
                } else if c == ',' && angle_depth == 0 {
                    parts.push(Vec::new());
                    prev_dash = false;
                    continue;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        parts.last_mut().expect("non-empty").push(t);
    }
    if parts.last().is_some_and(|p| p.is_empty()) {
        parts.pop();
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| field_name(&field))
        .collect()
}

/// Extracts the identifier preceding the first top-level `:` of a field,
/// skipping attributes and visibility.
fn field_name(tokens: &[TokenTree]) -> String {
    let mut i = 0usize;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) => return id.to_string(),
            other => panic!("serde derive stub: malformed field: {other:?}"),
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0usize;
            // Skip attributes on the variant.
            while let Some(TokenTree::Punct(p)) = part.get(i) {
                if p.as_char() == '#' {
                    i += 2;
                } else {
                    break;
                }
            }
            let name = match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde derive stub: malformed enum variant: {other:?}"),
            };
            i += 1;
            let shape = match part.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                assert_eq!(fields.len(), 1, "#[serde(transparent)] requires exactly one field");
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            } else {
                let mut s = String::from(
                    "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    s.push_str(&format!(
                        "__fields.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})));\n"
                    ));
                }
                s.push_str("::serde::Value::Object(__fields)");
                s
            }
        }
        Kind::TupleStruct(n) => match n {
            0 => "::serde::Value::Null".to_string(),
            1 => "::serde::Serialize::to_value(&self.0)".to_string(),
            _ if input.transparent => {
                panic!("#[serde(transparent)] requires exactly one field")
            }
            _ => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        },
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::variant(\"{vn}\", {inner}),\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::variant(\"{vn}\", ::serde::Value::Object(vec![{}])),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n{body}\n    }}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            if input.transparent {
                format!(
                    "::std::result::Result::Ok({name} {{ {}: ::serde::Deserialize::from_value(__v)? }})",
                    fields[0]
                )
            } else {
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("{f}: ::serde::Deserialize::from_value(__v.expect_field(\"{f}\")?)?")
                    })
                    .collect();
                format!("::std::result::Result::Ok({name} {{ {} }})", items.join(", "))
            }
        }
        Kind::TupleStruct(n) => match n {
            0 => format!("::std::result::Result::Ok({name}())"),
            1 => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            ),
            _ => {
                let items: Vec<String> = (0..*n)
                    .map(|i| {
                        format!("::serde::Deserialize::from_value(__v.expect_item({i}, {n})?)?")
                    })
                    .collect();
                format!("::std::result::Result::Ok({name}({}))", items.join(", "))
            }
        },
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(n) => {
                        let expr = if *n == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::from_value(__inner)?)")
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__inner.expect_item({i}, {n})?)?"
                                    )
                                })
                                .collect();
                            format!("{name}::{vn}({})", items.join(", "))
                        };
                        data_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({expr}),\n"
                        ));
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__inner.expect_field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                     match __s {{\n{unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let ::std::option::Option::Some((__tag, __inner)) = __v.as_variant() {{\n\
                     match __tag {{\n{data_arms} _ => {{}} }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::custom(format!(\"invalid {name} variant: {{:?}}\", __v)))"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n    }}\n}}\n"
    )
}
