//! Offline stand-in for `rand` 0.8.
//!
//! Exposes the API surface this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng`]'s `gen`, `gen_range`,
//! `gen_bool` — backed by xoshiro256++ seeded via SplitMix64.
//!
//! The generated *stream* differs from upstream `StdRng` (ChaCha12),
//! so absolute values drawn for a given seed are not identical to the
//! real crate; everything is still fully deterministic per seed.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable uniformly from the full bit stream (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges drawable via `rng.gen_range(range)`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded draw: uniform enough for simulation purposes
/// and branch-free deterministic.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for ::std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for ::std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng` — streams differ — but fast,
    /// high quality, and deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 never
            // produces four zeros from any seed, but belt and braces:
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(1e-9..1.0f64);
            assert!((1e-9..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_f64_in_range_and_gen_bool_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut trues = 0u32;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.25) {
                trues += 1;
            }
        }
        assert!((2000..3000).contains(&trues), "gen_bool(0.25) gave {trues}/10000");
    }
}
