//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` crate's [`Value`] tree as
//! JSON. Output formatting matches serde_json: compact `to_string`,
//! 2-space-indented `to_string_pretty`, struct fields in declaration
//! order, floats printed with a trailing `.0` when integral.

pub use serde::{Error, Number, Value};
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_value(out, item, indent, depth + 1)?;
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
            } else {
                out.push('{');
                for (i, (key, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, depth + 1)?;
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) -> Result<(), Error> {
    match n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite floats"));
            }
            if f == f.trunc() && f.abs() < 1e16 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let second = self.hex4()?;
                                let combined = 0x10000
                                    + ((first - 0xD800) << 10)
                                    + (second.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(first)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape {:?}",
                                other.map(|c| c as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                other => {
                    return Err(Error::custom(format!(
                        "unterminated string, got {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::F(f)))
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(|i| Value::Number(Number::I(i)))
                .or_else(|| text.parse::<f64>().ok().map(|f| Value::Number(Number::F(f))))
                .ok_or_else(|| Error::custom(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(|u| Value::Number(Number::U(u)))
                .or_else(|_| text.parse::<f64>().map(|f| Value::Number(Number::F(f))))
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::U(1))),
            ("b".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::String("x\"y".into())),
            ("d".into(), Value::Number(Number::F(1.5))),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"a":1,"b":[true,null],"c":"x\"y","d":1.5}"#);
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1,"));
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn integral_floats_keep_point_zero() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string(&7u64).unwrap(), "7");
    }
}
